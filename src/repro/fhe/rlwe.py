"""A minimal RLWE (ring-LWE) encryption layer over the accelerator field.

The paper positions the multiplier as a substrate for "solutions based
on Lattice problems and Learning with Errors" besides integer FHE
(Section III, citing Brakerski–Vaikuntanathan [2], [3]).  This module
realizes that claim concretely: a symmetric BV/BFV-style scheme over
``R_q = Z_q[x]/(x^n + 1)`` with ``q = p = 2^64 − 2^32 + 1`` — so every
polynomial product is a negacyclic convolution on exactly the NTT
machinery the accelerator implements.

Supported operations: encrypt/decrypt of message polynomials over
``Z_t``, homomorphic addition, and plaintext-by-ciphertext
multiplication.  (Ciphertext-by-ciphertext multiplication needs
relinearization keys, out of scope for this workload demonstration.)
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.field.solinas import P
from repro.field.vector import (
    to_field_array,
    to_field_matrix,
    vadd,
    vmul,
    vsub,
)
from repro.ntt.plan import TransformPlan
from repro.ntt.negacyclic import (
    negacyclic_convolution,
    negacyclic_convolution_broadcast,
    negacyclic_inverse_many,
    negacyclic_transform_many,
)


@dataclass(frozen=True)
class RLWEParams:
    """Ring dimension, plaintext modulus and noise width."""

    n: int = 1024
    t: int = 256
    noise_bound: int = 8

    def validate(self) -> None:
        if self.n & (self.n - 1):
            raise ValueError("ring dimension must be a power of two")
        if not 2 <= self.t < 1 << 32:
            raise ValueError("plaintext modulus out of range")
        if self.noise_bound < 1:
            raise ValueError("noise bound must be positive")

    @property
    def delta(self) -> int:
        """Plaintext scaling factor ``Δ = floor(q / t)``."""
        return P // self.t


@dataclass
class RLWECiphertext:
    """A pair ``(c0, c1)`` with ``c0 + c1·s ≈ Δ·m + e``."""

    c0: np.ndarray
    c1: np.ndarray
    params: RLWEParams


class RLWE:
    """Symmetric RLWE encryption with NTT-backed ring products."""

    def __init__(
        self,
        params: RLWEParams = RLWEParams(),
        rng: Optional[random.Random] = None,
        plan: Optional[TransformPlan] = None,
    ):
        """``plan`` (optional) pins every ring product to a prebuilt
        transform plan — this is how :meth:`repro.engine.Engine.fhe`
        binds an RLWE context to a per-engine plan cache and kernel
        (it passes the *fused* negacyclic plan, so every ring product
        skips the ψ-twist/untwist vector passes).  ``None`` consults
        the module-global plan cache per convolution, which likewise
        resolves to the fused plan; passing an unfused cyclic plan
        pins the explicit-twist oracle route instead — all three are
        bit-identical."""
        params.validate()
        if plan is not None and plan.n != params.n:
            raise ValueError(
                f"plan is {plan.n}-point but the ring dimension is {params.n}"
            )
        self.params = params
        self.rng = rng or random.Random()
        self.plan = plan

    # -- key and noise sampling -----------------------------------------

    def generate_secret(self) -> np.ndarray:
        """Ternary secret polynomial with coefficients in {-1, 0, 1}."""
        return to_field_array(
            [self.rng.choice((-1, 0, 1)) for _ in range(self.params.n)]
        )

    def _noise(self) -> np.ndarray:
        bound = self.params.noise_bound
        return to_field_array(
            [self.rng.randint(-bound, bound) for _ in range(self.params.n)]
        )

    def _uniform(self) -> np.ndarray:
        return to_field_array(
            [self.rng.randrange(P) for _ in range(self.params.n)]
        )

    # -- encryption --------------------------------------------------------

    def encrypt(self, secret: np.ndarray, message: List[int]) -> RLWECiphertext:
        """Encrypt a length-n message polynomial over ``Z_t``.

        ``c0 = -(a·s) + Δ·m + e``, ``c1 = a``.
        """
        params = self.params
        if len(message) != params.n:
            raise ValueError(f"message must have {params.n} coefficients")
        if any(not 0 <= m < params.t for m in message):
            raise ValueError("message coefficients must lie in [0, t)")
        a = self._uniform()
        scaled = to_field_array([params.delta * m for m in message])
        a_s = negacyclic_convolution(a, secret, self.plan)
        c0 = vadd(vsub(scaled, a_s), self._noise())
        return RLWECiphertext(c0=c0, c1=a, params=params)

    def decrypt(self, secret: np.ndarray, ct: RLWECiphertext) -> List[int]:
        """Recover the message: round ``(c0 + c1·s)·t/q``."""
        params = self.params
        phase = vadd(ct.c0, negacyclic_convolution(ct.c1, secret, self.plan))
        out = []
        for coeff in phase:
            m = (int(coeff) * params.t + P // 2) // P
            out.append(m % params.t)
        return out

    # -- batched encryption -------------------------------------------------

    def encrypt_many(
        self, secret: np.ndarray, messages: Sequence[Sequence[int]]
    ) -> List[RLWECiphertext]:
        """Encrypt a batch of message polynomials in one NTT pass.

        Semantically a loop of :meth:`encrypt` (fresh randomness per
        ciphertext), but all ``a·s`` ring products run through a single
        batched negacyclic convolution against one shared secret
        spectrum.
        """
        params = self.params
        messages = [list(message) for message in messages]
        for message in messages:
            if len(message) != params.n:
                raise ValueError(
                    f"message must have {params.n} coefficients"
                )
            if any(not 0 <= m < params.t for m in message):
                raise ValueError("message coefficients must lie in [0, t)")
        if not messages:
            return []
        batch = len(messages)
        a = np.vstack([self._uniform() for _ in range(batch)])
        noise = np.vstack([self._noise() for _ in range(batch)])
        scaled = np.vstack(
            [
                to_field_array([params.delta * m for m in message])
                for message in messages
            ]
        )
        a_s = negacyclic_convolution_broadcast(a, secret, self.plan)
        c0 = vadd(vsub(scaled, a_s), noise)
        return [
            RLWECiphertext(c0=c0[i], c1=a[i], params=params)
            for i in range(batch)
        ]

    def decrypt_many(
        self, secret: np.ndarray, cts: Sequence[RLWECiphertext]
    ) -> List[List[int]]:
        """Decrypt a batch of ciphertexts in one NTT pass."""
        params = self.params
        cts = list(cts)
        for ct in cts:
            if ct.params != params:
                raise ValueError("parameter mismatch")
        if not cts:
            return []
        c0 = np.vstack([ct.c0 for ct in cts])
        c1 = np.vstack([ct.c1 for ct in cts])
        phase = vadd(c0, negacyclic_convolution_broadcast(c1, secret, self.plan))
        return [
            [
                (int(coeff) * params.t + P // 2) // P % params.t
                for coeff in row
            ]
            for row in phase
        ]

    # -- homomorphic operations ---------------------------------------------

    def add(self, x: RLWECiphertext, y: RLWECiphertext) -> RLWECiphertext:
        """Homomorphic addition of message polynomials (mod t)."""
        if x.params != y.params:
            raise ValueError("parameter mismatch")
        return RLWECiphertext(
            c0=vadd(x.c0, y.c0), c1=vadd(x.c1, y.c1), params=x.params
        )

    def multiply_plain(
        self, ct: RLWECiphertext, plain: List[int]
    ) -> RLWECiphertext:
        """Multiply by an *unscaled* plaintext polynomial over ``Z_t``.

        Noise grows by a factor ~``t·n``; suitable for small constants
        and masks (the typical evaluation in encrypted statistics).
        """
        if len(plain) != ct.params.n:
            raise ValueError("plaintext length mismatch")
        poly = to_field_array(plain)
        return RLWECiphertext(
            c0=negacyclic_convolution(ct.c0, poly, self.plan),
            c1=negacyclic_convolution(ct.c1, poly, self.plan),
            params=ct.params,
        )

    def multiply_plain_many(
        self,
        cts: Sequence[RLWECiphertext],
        plains: Sequence[Sequence[int]],
    ) -> List[RLWECiphertext]:
        """Batched plaintext-by-ciphertext products, one per pair.

        Every ``c0``, ``c1`` and plaintext polynomial is forward-
        transformed exactly once (``3·B`` transforms, each plaintext
        spectrum reused against both ciphertext halves); bit-identical
        to looping :meth:`multiply_plain`.  On a fused plan this is
        the leanest RLWE hot path in the library: ``5·B`` plan
        executions and the ``2·B``-row pointwise product, with no
        twist/untwist/scale passes at all.
        """
        cts = list(cts)
        plains = [list(plain) for plain in plains]
        if len(cts) != len(plains):
            raise ValueError("one plaintext polynomial per ciphertext")
        for ct, plain in zip(cts, plains):
            if len(plain) != ct.params.n:
                raise ValueError("plaintext length mismatch")
        if not cts:
            return []
        batch = len(cts)
        polys = to_field_matrix(plains)
        stacked = np.vstack(
            [np.vstack([ct.c0 for ct in cts]), np.vstack([ct.c1 for ct in cts])]
        )
        spectra = negacyclic_transform_many(
            np.vstack([stacked, polys]), self.plan
        )
        ct_spectra = spectra[: 2 * batch]
        plain_spectra = spectra[2 * batch :]
        products = negacyclic_inverse_many(
            vmul(ct_spectra, np.vstack([plain_spectra, plain_spectra])),
            self.plan,
        )
        return [
            RLWECiphertext(
                c0=products[i], c1=products[batch + i], params=cts[i].params
            )
            for i in range(batch)
        ]
