"""A full RLWE (ring-LWE) homomorphic pipeline over the accelerator field.

The paper positions the multiplier as a substrate for "solutions based
on Lattice problems and Learning with Errors" besides integer FHE
(Section III, citing Brakerski–Vaikuntanathan [2], [3]).  This module
realizes that claim end to end: a symmetric BV-style scheme over
``R_q = Z_q[x]/(x^n + 1)`` in which every polynomial product is a
negacyclic convolution on exactly the NTT machinery the accelerator
implements.

Two modulus representations share one API:

- **single-modulus** (``rns_primes=None``): ``q = p = 2^64 − 2^32 + 1``,
  ciphertext components are flat ``(n,)`` residue vectors and ring
  products run directly in ``GF(p)``;
- **RNS/CRT** (``rns_primes=(q_1, ..., q_k)``): ``q = Π q_i`` and a
  ciphertext component is a ``(k, n)`` matrix of residue channels —
  each channel is *just another batched negacyclic ring over the same
  engine* (residues stack on the existing batch axis).  Channel
  products are computed exactly: the mod-``p`` convolution of
  ``[0, q_i)`` residues is lifted to its centered integer (the
  parameter validation guarantees ``n·(q_i − 1)² ≤ (p − 1)/2``) and
  reduced back mod ``q_i``.

Plaintexts use the BV **LSB encoding**: ``c0 + c1·s = m + t·e (mod q)``
with ``m ∈ Z_t[x]/(x^n + 1)``.  Decryption lifts the phase to its
centered representative and reduces mod ``t``; homomorphic operations
are then *pure ring arithmetic* — no rational rounding — which is what
lets ciphertext-by-ciphertext multiplication run on the integer NTT
datapath.

Supported operations: ``keygen``/``encrypt``/``decrypt`` (and batched
``*_many`` forms), homomorphic addition, plaintext products,
ciphertext-by-ciphertext products via :meth:`RLWE.tensor` +
:meth:`RLWE.relinearize` (base-decomposition key switching in
single-modulus mode, per-channel RNS decomposition otherwise), BGV
modulus switching (:meth:`RLWE.mod_switch`) for noise management, and
a ``noise_budget`` query.  An :class:`RLWE` instance bound to an
:class:`repro.engine.Engine` routes every ring product through the
engine's compute backend, so the same pipeline runs sharded on
``software-mp`` and cycle-counted on ``hw-model`` — bit-identically.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.field.solinas import P
from repro.field.vector import (
    to_field_array,
    to_field_matrix,
    vadd,
    vmul,
    vmul_scalar,
    vsub,
)
from repro.ntt.plan import TransformPlan
from repro.ntt.negacyclic import (
    negacyclic_convolution_broadcast,
    negacyclic_convolution_many,
    negacyclic_inverse_many,
    negacyclic_transform_many,
)

_HALF = np.uint64(P >> 1)
_EPSILON = np.uint64(0xFFFFFFFF)  # 2**64 - P


def _centered_lift(rows: np.ndarray) -> np.ndarray:
    """Centered signed representatives of canonical mod-``p`` values.

    ``v ≤ (p−1)/2`` maps to ``v``; larger residues map to ``v − p``.
    Both branches fit ``int64`` (``p/2 < 2^63``), and the negative
    branch exploits unsigned wrap-around: ``v + (2^64 − p)`` overflows
    to the two's-complement pattern of ``v − p``.
    """
    return np.where(rows > _HALF, rows + _EPSILON, rows).view(np.int64)


def _is_prime(n: int) -> bool:
    """Deterministic Miller–Rabin for 64-bit integers."""
    if n < 2:
        return False
    for small in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % small == 0:
            return n == small
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def default_rns_primes(n: int, t: int, count: int = 3) -> Tuple[int, ...]:
    """The ``count`` largest residue-channel primes for ``(n, t)``.

    Each prime satisfies the three structural requirements of the RNS
    representation: ``q_i ≡ 1 (mod t)`` (so BGV modulus switching
    preserves the plaintext), ``q_i > t``, and
    ``n·(q_i − 1)² ≤ (p − 1)/2`` (so per-channel negacyclic products
    lift exactly from one mod-``p`` convolution).
    """
    if count < 1:
        raise ValueError("count must be positive")
    ceiling = math.isqrt((P - 1) // (2 * n)) + 1
    # Largest candidate ≡ 1 (mod t) at or below the exactness ceiling.
    q = ceiling - (ceiling - 1) % t
    primes: List[int] = []
    while len(primes) < count and q > t:
        if n * (q - 1) * (q - 1) <= (P - 1) // 2 and _is_prime(q):
            primes.append(q)
        q -= t
    if len(primes) < count:
        raise ValueError(
            f"could not find {count} channel primes for n={n}, t={t}"
        )
    return tuple(primes)


@dataclass(frozen=True)
class RLWEParams:
    """Ring dimension, plaintext modulus, noise width and modulus chain.

    ``rns_primes=None`` selects the single-modulus scheme over
    ``q = p``; a tuple of primes selects the RNS/CRT representation
    with ``q = Π q_i`` (the *modulus chain* — ``mod_switch`` drops
    primes from the end).  ``relin_base`` is the log2 digit width of
    the base-decomposition relinearization keys in single-modulus
    mode (RNS mode decomposes per channel instead).

    Frozen, hashable and pickle-stable like
    :class:`repro.engine.config.ExecutionConfig`, so ``software-mp``
    workers and ``repro.serve`` coalesce keys can carry it.
    """

    n: int = 1024
    t: int = 256
    noise_bound: int = 8
    rns_primes: Optional[Tuple[int, ...]] = None
    relin_base: int = 16

    def __post_init__(self) -> None:
        if self.rns_primes is not None and not isinstance(
            self.rns_primes, tuple
        ):
            object.__setattr__(
                self, "rns_primes", tuple(int(q) for q in self.rns_primes)
            )

    def validate(self) -> None:
        if self.n & (self.n - 1):
            raise ValueError("ring dimension must be a power of two")
        if not 2 <= self.t < 1 << 32:
            raise ValueError("plaintext modulus out of range")
        if self.noise_bound < 1:
            raise ValueError("noise bound must be positive")
        if not 1 <= self.relin_base <= 32:
            raise ValueError("relin_base must be in [1, 32] bits")
        if self.rns_primes is None:
            return
        primes = self.rns_primes
        if len(primes) < 1:
            raise ValueError("rns_primes must name at least one prime")
        if len(set(primes)) != len(primes):
            raise ValueError("rns_primes must be distinct")
        for q in primes:
            if q <= self.t:
                raise ValueError(
                    f"channel prime {q} must exceed the plaintext "
                    f"modulus {self.t}"
                )
            if q % self.t != 1:
                raise ValueError(
                    f"channel prime {q} must be ≡ 1 (mod t={self.t}) "
                    "for modulus switching to preserve the plaintext"
                )
            if self.n * (q - 1) * (q - 1) > (P - 1) // 2:
                raise ValueError(
                    f"channel prime {q} too large: n·(q−1)² must not "
                    "exceed (p−1)/2 for exact channel products"
                )
            if not _is_prime(q):
                raise ValueError(f"rns_primes entry {q} is not prime")

    @property
    def delta(self) -> int:
        """Legacy MSB scaling factor ``Δ = floor(p / t)`` (kept for
        API compatibility; the LSB encoding does not use it)."""
        return P // self.t

    @property
    def is_rns(self) -> bool:
        return self.rns_primes is not None

    @property
    def level_count(self) -> int:
        """Length of the modulus chain (1 in single-modulus mode)."""
        return len(self.rns_primes) if self.rns_primes else 1

    def modulus(self, level: Optional[int] = None) -> int:
        """The ciphertext modulus ``q`` at ``level`` active primes."""
        if self.rns_primes is None:
            return P
        if level is None:
            level = len(self.rns_primes)
        if not 1 <= level <= len(self.rns_primes):
            raise ValueError(f"level must be in [1, {len(self.rns_primes)}]")
        q = 1
        for prime in self.rns_primes[:level]:
            q *= prime
        return q


@dataclass
class RLWECiphertext:
    """``(c0, c1[, c2])`` with ``c0 + c1·s + c2·s² = m + t·e (mod q)``.

    Components are ``(n,)`` vectors in single-modulus mode and
    ``(level, n)`` residue-channel matrices in RNS mode.  ``c2`` is
    only present on the degree-2 output of :meth:`RLWE.tensor`, before
    relinearization folds it back into ``(c0, c1)``.
    """

    c0: np.ndarray
    c1: np.ndarray
    params: RLWEParams
    c2: Optional[np.ndarray] = None
    level: Optional[int] = None

    def __post_init__(self) -> None:
        if self.level is None:
            self.level = self.params.level_count

    @property
    def degree(self) -> int:
        """Polynomial degree in ``s`` plus one (2, or 3 pre-relin)."""
        return 2 if self.c2 is None else 3


class RelinKeys:
    """Relinearization (key-switching) key material, secret-free.

    ``levels`` maps a modulus-chain level to its digit keys: a tuple of
    ``(k0, k1)`` pairs, one per decomposition digit, each component an
    RNS element at that level (or a flat mod-``p`` vector in
    single-modulus mode, under level 1).  Safe to ship to an untrusted
    evaluator — :meth:`RLWE.multiply` needs only this, never the
    secret.
    """

    def __init__(
        self,
        params: RLWEParams,
        levels: Dict[int, Tuple[Tuple[np.ndarray, np.ndarray], ...]],
    ):
        self.params = params
        self.levels = levels
        self._digest: Optional[str] = None

    def for_level(self, level: int):
        try:
            return self.levels[level]
        except KeyError:
            raise ValueError(
                f"no relinearization key for level {level} — in RNS mode "
                "multiply before the final modulus switch (level 1 has "
                "no headroom for key-switching noise)"
            ) from None

    def digest(self) -> str:
        """A stable content hash (used in service coalesce keys)."""
        if self._digest is None:
            h = hashlib.sha256()
            h.update(repr(self.params).encode())
            for level in sorted(self.levels):
                h.update(level.to_bytes(4, "little"))
                for k0, k1 in self.levels[level]:
                    h.update(np.ascontiguousarray(k0).tobytes())
                    h.update(np.ascontiguousarray(k1).tobytes())
            self._digest = h.hexdigest()
        return self._digest

    # -- wire format -------------------------------------------------------

    def to_payload(self) -> dict:
        """JSON-encodable form (see :class:`repro.serve` ``rlwe-multiply``)."""

        def encode(component: np.ndarray):
            if component.ndim == 1:
                return [int(v) for v in component]
            return [[int(v) for v in row] for row in component]

        return {
            "levels": {
                str(level): [
                    [encode(k0), encode(k1)] for k0, k1 in keys
                ]
                for level, keys in self.levels.items()
            }
        }

    @classmethod
    def from_payload(cls, params: RLWEParams, raw: dict) -> "RelinKeys":
        raw_levels = raw.get("levels")
        if not isinstance(raw_levels, dict) or not raw_levels:
            raise ValueError("relin payload must carry a levels object")

        def decode(component, level: int) -> np.ndarray:
            if params.is_rns:
                matrix = to_field_matrix(component)
                if matrix.shape != (level, params.n):
                    raise ValueError(
                        f"relin component must be ({level}, {params.n})"
                    )
                return matrix
            vector = to_field_array(component)
            if vector.shape != (params.n,):
                raise ValueError(
                    f"relin component must have {params.n} coefficients"
                )
            return vector

        levels: Dict[int, Tuple[Tuple[np.ndarray, np.ndarray], ...]] = {}
        for key, raw_keys in raw_levels.items():
            level = int(key)
            levels[level] = tuple(
                (decode(k0, level), decode(k1, level))
                for k0, k1 in raw_keys
            )
        return cls(params=params, levels=levels)


@dataclass(eq=False)
class RLWEKeyPair:
    """Secret key plus the evaluator-facing relinearization keys."""

    secret: np.ndarray  # signed ternary (n,) int64
    params: RLWEParams
    relin: RelinKeys

    @property
    def secret_field(self) -> np.ndarray:
        """The secret as a canonical mod-``p`` field vector (the shape
        legacy single-modulus call sites pass around)."""
        return to_field_matrix(self.secret.reshape(1, -1))[0]


class RLWE:
    """Symmetric RLWE encryption with NTT-backed ring products.

    The preferred constructor is :meth:`repro.engine.Engine.fhe`, which
    binds the scheme to the engine's fused, permutation-free negacyclic
    plan *and* to its compute backend — ring products then shard on
    ``software-mp`` and are cycle-counted on ``hw-model``.  A free
    instance (no engine) runs the module-level convolution helpers on
    the process-global plan cache; all routes are bit-identical.
    """

    def __init__(
        self,
        params: RLWEParams = RLWEParams(),
        rng: Optional[random.Random] = None,
        plan: Optional[TransformPlan] = None,
        engine: Optional[Any] = None,
    ):
        """``plan`` (optional) pins every ring product to a prebuilt
        transform plan; ``engine`` (optional) additionally routes every
        transform through that engine's compute backend.  ``None`` for
        both consults the module-global plan cache per convolution,
        which resolves to the fused decimated plan; passing an unfused
        cyclic plan pins the explicit-twist oracle route instead — all
        routes are bit-identical."""
        params.validate()
        if engine is not None and plan is None:
            from repro.ntt.plan import ORDER_DECIMATED, TWIST_NEGACYCLIC

            plan = engine.plan(
                params.n, twist=TWIST_NEGACYCLIC, ordering=ORDER_DECIMATED
            )
        if plan is not None and plan.n != params.n:
            raise ValueError(
                f"plan is {plan.n}-point but the ring dimension is {params.n}"
            )
        self.params = params
        self.rng = rng or random.Random()
        self.plan = plan
        self.engine = engine
        if params.is_rns:
            self._primes = np.array(params.rns_primes, dtype=np.int64)
        else:
            self._primes = None

    # -- transform plumbing ------------------------------------------------

    def _transform_rows(
        self, rows: np.ndarray, inverse: bool = False
    ) -> np.ndarray:
        """One batched (inverse) negacyclic transform, engine-routed.

        Bound schemes dispatch through ``engine._transform`` so the
        backend sees the pass (sharded on ``software-mp``,
        cycle-counted on ``hw-model``); free schemes run the module
        helpers on ``self.plan``.
        """
        if self.engine is not None and self.plan is not None:
            return self.engine._transform(self.plan, rows, inverse=inverse)
        if inverse:
            return negacyclic_inverse_many(rows, self.plan)
        return negacyclic_transform_many(rows, self.plan)

    def _conv_rows(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Row-wise ``(R, n)`` negacyclic products mod ``p``."""
        if self.engine is not None:
            return self.engine.ring(self.params.n).convolve(
                a, b, negacyclic=True
            )
        return negacyclic_convolution_many(a, b, self.plan)

    def _conv_broadcast(
        self, rows: np.ndarray, poly: np.ndarray
    ) -> np.ndarray:
        """Every row of ``(R, n)`` against one fixed polynomial."""
        if self.engine is not None:
            return self.engine.ring(self.params.n).convolve(
                rows, poly, negacyclic=True
            )
        return negacyclic_convolution_broadcast(rows, poly, self.plan)

    # -- RNS channel arithmetic --------------------------------------------

    def _prime_column(self, level: int, repeat: int = 1) -> np.ndarray:
        """``(repeat·level, 1)`` column of channel primes, cycled."""
        return np.tile(self._primes[:level], repeat).reshape(-1, 1)

    def _channel_reduce(
        self, product_rows: np.ndarray, prime_column: np.ndarray
    ) -> np.ndarray:
        """Exact lift-and-reduce of mod-``p`` channel products.

        ``product_rows`` holds negacyclic products of residues in
        ``[0, q_i)``; the validated bound ``n·(q_i − 1)² ≤ (p − 1)/2``
        makes the centered lift the true integer convolution, which
        then reduces mod the row's channel prime.
        """
        return (
            _centered_lift(product_rows) % prime_column
        ).astype(np.uint64)

    def _channel_conv(
        self, a: np.ndarray, b: np.ndarray, prime_column: np.ndarray
    ) -> np.ndarray:
        """Row-wise exact residue-channel negacyclic products."""
        return self._channel_reduce(self._conv_rows(a, b), prime_column)

    def _secret_rows(self, secret: np.ndarray, level: int) -> np.ndarray:
        """``(level, n)`` channel residues of a signed secret."""
        return (
            secret.astype(np.int64) % self._primes[:level, np.newaxis]
        ).astype(np.uint64)

    @staticmethod
    def _as_signed_secret(key) -> np.ndarray:
        """Accept an :class:`RLWEKeyPair` or a legacy secret vector."""
        if isinstance(key, RLWEKeyPair):
            return key.secret
        rows = np.ascontiguousarray(key, dtype=np.uint64).reshape(1, -1)
        return _centered_lift(rows)[0]

    def _secret_for(self, key) -> np.ndarray:
        """The secret in this scheme's native component shape."""
        if self.params.is_rns:
            return self._secret_rows(
                self._as_signed_secret(key), self.params.level_count
            )
        if isinstance(key, RLWEKeyPair):
            return key.secret_field
        return np.ascontiguousarray(key, dtype=np.uint64)

    # -- key and noise sampling -----------------------------------------

    def generate_secret(self) -> np.ndarray:
        """Ternary secret polynomial with coefficients in {-1, 0, 1},
        as a canonical mod-``p`` field vector (legacy single-modulus
        shape; prefer :meth:`keygen`, which also builds the
        relinearization keys)."""
        return to_field_array(
            [self.rng.choice((-1, 0, 1)) for _ in range(self.params.n)]
        )

    def _ternary(self) -> np.ndarray:
        return np.array(
            [self.rng.choice((-1, 0, 1)) for _ in range(self.params.n)],
            dtype=np.int64,
        )

    def _noise_signed(self, count: int = 1) -> np.ndarray:
        bound = self.params.noise_bound
        return np.array(
            [
                [
                    self.rng.randint(-bound, bound)
                    for _ in range(self.params.n)
                ]
                for _ in range(count)
            ],
            dtype=np.int64,
        )

    def _uniform_field(self, count: int = 1) -> np.ndarray:
        return to_field_matrix(
            [
                [self.rng.randrange(P) for _ in range(self.params.n)]
                for _ in range(count)
            ]
        )

    def _uniform_channels(self, level: int, count: int = 1) -> np.ndarray:
        """``(count·level, n)`` uniform residue rows (a uniform element
        of ``Z_q`` *is* independent uniform residues per channel)."""
        rows = []
        for _ in range(count):
            for prime in self.params.rns_primes[:level]:
                rows.append(
                    [self.rng.randrange(prime) for _ in range(self.params.n)]
                )
        return np.array(rows, dtype=np.uint64)

    def keygen(self) -> RLWEKeyPair:
        """Draw a ternary secret and all relinearization keys.

        Single-modulus mode builds the base-``2^relin_base`` digit
        keys ``rlk_j = (−(a_j·s) + t·e_j + T^j·s², a_j)``.  RNS mode
        builds one key pair per residue channel and per modulus-chain
        level ≥ 2: ``rlk_i = (−(a_i·s) + t·e_i + q̂_i·s², a_i)`` with
        ``q̂_i = q/q_i`` (keys are per level because ``q`` shrinks at
        every :meth:`mod_switch`).
        """
        params = self.params
        secret = self._ternary()
        if not params.is_rns:
            s_field = to_field_matrix(secret.reshape(1, -1))[0]
            s_sq = self._conv_rows(
                s_field.reshape(1, -1), s_field.reshape(1, -1)
            )[0]
            digits = -(-64 // params.relin_base)  # ceil(64 / base)
            a_rows = self._uniform_field(digits)
            noises = self._noise_signed(digits)
            a_s = self._conv_broadcast(a_rows, s_field)
            keys = []
            for j in range(digits):
                body = vadd(
                    to_field_array(
                        [params.t * int(e) for e in noises[j]]
                    ),
                    vmul_scalar(s_sq, 1 << (j * params.relin_base)),
                )
                keys.append((vsub(body, a_s[j]), a_rows[j]))
            relin = RelinKeys(params, {1: tuple(keys)})
            return RLWEKeyPair(secret=secret, params=params, relin=relin)

        # RNS: s² as the exact (small) signed integer polynomial, then
        # per-level key material.
        s_rows_full = self._secret_rows(secret, params.level_count)
        s_field = to_field_matrix(secret.reshape(1, -1))
        s_sq_int = _centered_lift(self._conv_rows(s_field, s_field))[0]
        levels: Dict[int, Tuple[Tuple[np.ndarray, np.ndarray], ...]] = {}
        for level in range(2, params.level_count + 1):
            primes = params.rns_primes[:level]
            q = self.params.modulus(level)
            s_rows = s_rows_full[:level]
            prime_col = self._prime_column(level, repeat=level)
            a_rows = self._uniform_channels(level, count=level)
            a_s = self._channel_conv(
                a_rows, np.tile(s_rows, (level, 1)), prime_col
            )
            keys = []
            for i in range(level):
                qhat = q // primes[i]
                noise = self._noise_signed(1)[0]
                k0 = np.empty((level, params.n), dtype=np.uint64)
                for j, prime in enumerate(primes):
                    body = (
                        params.t * noise
                        + (qhat % prime) * s_sq_int
                        - a_s[i * level + j].astype(np.int64)
                    )
                    k0[j] = (body % prime).astype(np.uint64)
                keys.append((k0, a_rows[i * level : (i + 1) * level]))
            levels[level] = tuple(keys)
        relin = RelinKeys(params, levels)
        return RLWEKeyPair(secret=secret, params=params, relin=relin)

    # -- encryption --------------------------------------------------------

    def _check_messages(
        self, messages: Sequence[Sequence[int]]
    ) -> List[List[int]]:
        params = self.params
        checked = [list(message) for message in messages]
        for message in checked:
            if len(message) != params.n:
                raise ValueError(
                    f"message must have {params.n} coefficients"
                )
            if any(not 0 <= m < params.t for m in message):
                raise ValueError("message coefficients must lie in [0, t)")
        return checked

    def encrypt(self, key, message: Sequence[int]) -> RLWECiphertext:
        """Encrypt a length-n message polynomial over ``Z_t``.

        ``c0 = -(a·s) + m + t·e``, ``c1 = a`` (LSB encoding).  ``key``
        is an :class:`RLWEKeyPair` or a legacy mod-``p`` secret vector.
        """
        return self.encrypt_many(key, [message])[0]

    def decrypt(self, key, ct: RLWECiphertext) -> List[int]:
        """Recover the message: centered phase lift, reduced mod ``t``."""
        return self.decrypt_many(key, [ct])[0]

    def encrypt_many(
        self, key, messages: Sequence[Sequence[int]]
    ) -> List[RLWECiphertext]:
        """Encrypt a batch of message polynomials in one NTT pass.

        Semantically a loop of :meth:`encrypt` (fresh randomness per
        ciphertext), but all ``a·s`` ring products run through a single
        batched negacyclic convolution pass (RNS channels ride the
        same batch axis).
        """
        params = self.params
        messages = self._check_messages(messages)
        if not messages:
            return []
        batch = len(messages)
        noise = self._noise_signed(batch)
        payload = np.array(messages, dtype=np.int64) + params.t * noise

        if not params.is_rns:
            secret = self._secret_for(key)
            a = self._uniform_field(batch)
            a_s = self._conv_broadcast(a, secret)
            c0 = vsub(to_field_matrix(payload), a_s)
            return [
                RLWECiphertext(c0=c0[i], c1=a[i], params=params)
                for i in range(batch)
            ]

        level = params.level_count
        s_rows = self._secret_for(key)
        a = self._uniform_channels(level, count=batch)
        prime_col = self._prime_column(level, repeat=batch)
        a_s = self._channel_conv(a, np.tile(s_rows, (batch, 1)), prime_col)
        payload_rows = np.repeat(payload, level, axis=0)
        c0 = (
            (payload_rows - a_s.astype(np.int64)) % prime_col
        ).astype(np.uint64)
        return [
            RLWECiphertext(
                c0=c0[i * level : (i + 1) * level],
                c1=a[i * level : (i + 1) * level],
                params=params,
            )
            for i in range(batch)
        ]

    def _check_ciphertexts(
        self, cts: Sequence[RLWECiphertext]
    ) -> List[RLWECiphertext]:
        cts = list(cts)
        for ct in cts:
            if ct.params != self.params:
                raise ValueError("parameter mismatch")
            if ct.level != cts[0].level:
                raise ValueError("ciphertexts at different levels")
        return cts

    def _phase_rows(self, key, cts: Sequence[RLWECiphertext]) -> np.ndarray:
        """Stacked phases ``c0 + c1·s (+ c2·s²)`` for a batch."""
        params = self.params
        batch = len(cts)
        level = cts[0].level
        degree2 = any(ct.c2 is not None for ct in cts)
        if not params.is_rns:
            secret = self._secret_for(key)
            c1 = np.vstack([ct.c1 for ct in cts])
            phase = vadd(
                np.vstack([ct.c0 for ct in cts]),
                self._conv_broadcast(c1, secret),
            )
            if degree2:
                s_sq = self._conv_rows(
                    secret.reshape(1, -1), secret.reshape(1, -1)
                )[0]
                c2 = np.vstack(
                    [
                        ct.c2
                        if ct.c2 is not None
                        else np.zeros(params.n, dtype=np.uint64)
                        for ct in cts
                    ]
                )
                phase = vadd(phase, self._conv_broadcast(c2, s_sq))
            return phase

        signed = self._as_signed_secret(key)
        s_rows = self._secret_rows(signed, level)
        prime_col = self._prime_column(level, repeat=batch)
        c1 = np.vstack([ct.c1 for ct in cts])
        phase = (
            np.vstack([ct.c0 for ct in cts])
            + self._channel_conv(c1, np.tile(s_rows, (batch, 1)), prime_col)
        ) % prime_col.astype(np.uint64)
        if degree2:
            s_field = to_field_matrix(signed.reshape(1, -1))
            s_sq_int = _centered_lift(self._conv_rows(s_field, s_field))[0]
            s_sq_rows = (
                s_sq_int % self._primes[:level, np.newaxis]
            ).astype(np.uint64)
            c2 = np.vstack(
                [
                    ct.c2
                    if ct.c2 is not None
                    else np.zeros((level, params.n), dtype=np.uint64)
                    for ct in cts
                ]
            )
            term = self._channel_conv(
                c2, np.tile(s_sq_rows, (batch, 1)), prime_col
            )
            phase = (phase + term) % prime_col.astype(np.uint64)
        return phase

    def _crt_lift(self, rows: np.ndarray, level: int) -> List[List[int]]:
        """CRT-recombine ``(batch·level, n)`` channels to integers mod
        ``q`` (one Python-int row per ciphertext)."""
        params = self.params
        primes = params.rns_primes[:level]
        q = params.modulus(level)
        coefs = []
        for i, prime in enumerate(primes):
            qhat = q // prime
            coefs.append(qhat * pow(qhat % prime, -1, prime) % q)
        batch = rows.shape[0] // level
        out = []
        for b in range(batch):
            chunk = rows[b * level : (b + 1) * level]
            row = []
            for j in range(params.n):
                x = 0
                for i in range(level):
                    x += int(chunk[i, j]) * coefs[i]
                row.append(x % q)
            out.append(row)
        return out

    def decrypt_many(
        self, key, cts: Sequence[RLWECiphertext]
    ) -> List[List[int]]:
        """Decrypt a batch of ciphertexts in one NTT pass.

        Degree-2 ciphertexts (fresh :meth:`tensor` outputs) decrypt
        directly via the ``c2·s²`` term — relinearization is a
        performance transform, not a decryption requirement.
        """
        params = self.params
        cts = self._check_ciphertexts(cts)
        if not cts:
            return []
        phase = self._phase_rows(key, cts)
        if not params.is_rns:
            return [
                [
                    (
                        int(v) - P if int(v) > P >> 1 else int(v)
                    ) % params.t
                    for v in row
                ]
                for row in phase
            ]
        level = cts[0].level
        q = params.modulus(level)
        lifted = self._crt_lift(phase, level)
        return [
            [(x - q if x > q >> 1 else x) % params.t for x in row]
            for row in lifted
        ]

    # -- homomorphic operations ---------------------------------------------

    def add(self, x: RLWECiphertext, y: RLWECiphertext) -> RLWECiphertext:
        """Homomorphic addition of message polynomials (mod t)."""
        if x.params != y.params:
            raise ValueError("parameter mismatch")
        if x.level != y.level or x.degree != y.degree:
            raise ValueError("ciphertexts at different levels or degrees")
        if not self.params.is_rns:
            return RLWECiphertext(
                c0=vadd(x.c0, y.c0),
                c1=vadd(x.c1, y.c1),
                params=x.params,
                c2=(
                    vadd(x.c2, y.c2) if x.c2 is not None else None
                ),
                level=x.level,
            )
        primes = self._primes[: x.level, np.newaxis].astype(np.uint64)
        return RLWECiphertext(
            c0=(x.c0 + y.c0) % primes,
            c1=(x.c1 + y.c1) % primes,
            params=x.params,
            c2=((x.c2 + y.c2) % primes if x.c2 is not None else None),
            level=x.level,
        )

    def multiply_plain(
        self, ct: RLWECiphertext, plain: Sequence[int]
    ) -> RLWECiphertext:
        """Multiply by an *unscaled* plaintext polynomial over ``Z_t``.

        Noise grows by a factor ~``t·n``; suitable for small constants
        and masks (the typical evaluation in encrypted statistics).
        """
        return self.multiply_plain_many([ct], [plain])[0]

    def multiply_plain_many(
        self,
        cts: Sequence[RLWECiphertext],
        plains: Sequence[Sequence[int]],
    ) -> List[RLWECiphertext]:
        """Batched plaintext-by-ciphertext products, one per pair.

        Every ``c0``, ``c1`` and plaintext polynomial is forward-
        transformed exactly once (each plaintext spectrum reused
        against both ciphertext halves — and across every residue
        channel in RNS mode, since ``Z_t`` coefficients are the same
        residues in every channel); bit-identical to looping
        :meth:`multiply_plain`.
        """
        cts = list(cts)
        plains = [list(plain) for plain in plains]
        if len(cts) != len(plains):
            raise ValueError("one plaintext polynomial per ciphertext")
        for ct, plain in zip(cts, plains):
            if len(plain) != ct.params.n:
                raise ValueError("plaintext length mismatch")
        if not cts:
            return []
        self._check_ciphertexts(cts)
        params = self.params
        batch = len(cts)
        polys = to_field_matrix(plains)

        if not params.is_rns:
            stacked = np.vstack(
                [
                    np.vstack([ct.c0 for ct in cts]),
                    np.vstack([ct.c1 for ct in cts]),
                ]
            )
            spectra = self._transform_rows(np.vstack([stacked, polys]))
            ct_spectra = spectra[: 2 * batch]
            plain_spectra = spectra[2 * batch :]
            products = self._transform_rows(
                vmul(
                    ct_spectra, np.vstack([plain_spectra, plain_spectra])
                ),
                inverse=True,
            )
            return [
                RLWECiphertext(
                    c0=products[i],
                    c1=products[batch + i],
                    params=cts[i].params,
                )
                for i in range(batch)
            ]

        level = cts[0].level
        rows = batch * level
        stacked = np.vstack(
            [
                np.vstack([ct.c0 for ct in cts]),
                np.vstack([ct.c1 for ct in cts]),
            ]
        )
        spectra = self._transform_rows(np.vstack([stacked, polys]))
        ct_spectra = spectra[: 2 * rows]
        plain_spectra = np.repeat(spectra[2 * rows :], level, axis=0)
        products = self._transform_rows(
            vmul(
                ct_spectra, np.vstack([plain_spectra, plain_spectra])
            ),
            inverse=True,
        )
        prime_col = self._prime_column(level, repeat=2 * batch)
        reduced = self._channel_reduce(products, prime_col)
        return [
            RLWECiphertext(
                c0=reduced[i * level : (i + 1) * level],
                c1=reduced[rows + i * level : rows + (i + 1) * level],
                params=cts[i].params,
                level=level,
            )
            for i in range(batch)
        ]

    # -- ciphertext-by-ciphertext multiplication -----------------------------

    def tensor(
        self, x: RLWECiphertext, y: RLWECiphertext
    ) -> RLWECiphertext:
        """The degree-2 ciphertext product ``(c0·d0, c0·d1 + c1·d0,
        c1·d1)`` (relinearize to return to two components)."""
        return self.tensor_many([(x, y)])[0]

    def tensor_many(
        self, pairs: Sequence[Tuple[RLWECiphertext, RLWECiphertext]]
    ) -> List[RLWECiphertext]:
        """Batched tensor products: one 4-way spectrum-reuse pass.

        All ``c0/c1/d0/d1`` rows of every pair (times every residue
        channel) are forward-transformed in one batch; the four cross
        products per pair are pointwise spectrum products and one
        batched inverse.
        """
        pairs = list(pairs)
        if not pairs:
            return []
        xs = self._check_ciphertexts([x for x, _ in pairs])
        ys = self._check_ciphertexts([y for _, y in pairs])
        if xs[0].level != ys[0].level:
            raise ValueError("ciphertexts at different levels")
        for ct in (*xs, *ys):
            if ct.c2 is not None:
                raise ValueError(
                    "tensor operands must be degree-1 ciphertexts — "
                    "relinearize first"
                )
        params = self.params
        level = xs[0].level if params.is_rns else 1
        batch = len(pairs)
        rows = batch * level
        stacked = np.vstack(
            [
                np.vstack([x.c0.reshape(level, -1) for x in xs]),
                np.vstack([x.c1.reshape(level, -1) for x in xs]),
                np.vstack([y.c0.reshape(level, -1) for y in ys]),
                np.vstack([y.c1.reshape(level, -1) for y in ys]),
            ]
        )
        spectra = self._transform_rows(stacked)
        c0s, c1s = spectra[:rows], spectra[rows : 2 * rows]
        d0s, d1s = spectra[2 * rows : 3 * rows], spectra[3 * rows :]
        products = self._transform_rows(
            np.vstack(
                [
                    vmul(c0s, d0s),
                    vmul(c0s, d1s),
                    vmul(c1s, d0s),
                    vmul(c1s, d1s),
                ]
            ),
            inverse=True,
        )
        p00 = products[:rows]
        p01 = products[rows : 2 * rows]
        p10 = products[2 * rows : 3 * rows]
        p11 = products[3 * rows :]
        if not params.is_rns:
            e1 = vadd(p01, p10)
            return [
                RLWECiphertext(
                    c0=p00[i], c1=e1[i], params=params, c2=p11[i]
                )
                for i in range(batch)
            ]
        prime_col = self._prime_column(level, repeat=batch)
        primes_u = prime_col.astype(np.uint64)
        e0 = self._channel_reduce(p00, prime_col)
        e1 = (
            self._channel_reduce(p01, prime_col)
            + self._channel_reduce(p10, prime_col)
        ) % primes_u
        e2 = self._channel_reduce(p11, prime_col)
        return [
            RLWECiphertext(
                c0=e0[i * level : (i + 1) * level],
                c1=e1[i * level : (i + 1) * level],
                params=params,
                c2=e2[i * level : (i + 1) * level],
                level=level,
            )
            for i in range(batch)
        ]

    @staticmethod
    def _as_relin(key) -> RelinKeys:
        if isinstance(key, RLWEKeyPair):
            return key.relin
        if isinstance(key, RelinKeys):
            return key
        raise TypeError(
            "expected an RLWEKeyPair or RelinKeys; legacy secret "
            "vectors carry no relinearization keys — use keygen()"
        )

    def relinearize(self, key, ct: RLWECiphertext) -> RLWECiphertext:
        """Fold a degree-2 ciphertext back to ``(c0, c1)`` via key
        switching (base-decomposition digits in single-modulus mode,
        per-channel RNS decomposition otherwise)."""
        return self.relinearize_many(key, [ct])[0]

    def relinearize_many(
        self, key, cts: Sequence[RLWECiphertext]
    ) -> List[RLWECiphertext]:
        """Batched key switching: all digit products in one pass."""
        cts = self._check_ciphertexts(cts)
        if not cts:
            return []
        for ct in cts:
            if ct.c2 is None:
                raise ValueError(
                    "ciphertext has no degree-2 component to relinearize"
                )
        relin = self._as_relin(key)
        if relin.params != self.params:
            raise ValueError("relinearization keys for different params")
        params = self.params
        batch = len(cts)

        if not params.is_rns:
            keys = relin.for_level(1)
            digits = len(keys)
            base = params.relin_base
            mask = np.uint64((1 << base) - 1)
            c2 = np.vstack([ct.c2 for ct in cts])
            digit_rows = np.vstack(
                [
                    (c2 >> np.uint64(j * base)) & mask
                    for j in range(digits)
                ]
            )
            key_rows = np.vstack(
                [
                    np.vstack(
                        [np.broadcast_to(k0, (batch, params.n)) for k0, _ in keys]
                    ),
                    np.vstack(
                        [np.broadcast_to(k1, (batch, params.n)) for _, k1 in keys]
                    ),
                ]
            )
            products = self._conv_rows(
                np.vstack([digit_rows, digit_rows]), key_rows
            )
            half = digits * batch
            sum0 = products[:half].reshape(digits, batch, params.n)
            sum1 = products[half:].reshape(digits, batch, params.n)
            acc0 = sum0[0].copy()
            acc1 = sum1[0].copy()
            for j in range(1, digits):
                acc0 = vadd(acc0, sum0[j])
                acc1 = vadd(acc1, sum1[j])
            return [
                RLWECiphertext(
                    c0=vadd(cts[i].c0, acc0[i]),
                    c1=vadd(cts[i].c1, acc1[i]),
                    params=params,
                )
                for i in range(batch)
            ]

        level = cts[0].level
        keys = relin.for_level(level)
        primes = params.rns_primes[:level]
        q = params.modulus(level)
        # Per-channel digits d_i = [c2_i · (q/q_i)^{-1}]_{q_i}: small
        # single-channel polynomials whose weighted sum recombines c2.
        inv_qhat = np.array(
            [
                pow((q // prime) % prime, -1, prime)
                for prime in primes
            ],
            dtype=np.uint64,
        )
        digit_rows = []  # (batch·level², n): pair b, digit i, channel j
        key0_rows = []
        key1_rows = []
        prime_rows = []
        for b, ct in enumerate(cts):
            digits = []
            for i, prime in enumerate(primes):
                d = (
                    ct.c2[i].astype(np.int64)
                    * np.int64(inv_qhat[i])
                    % np.int64(prime)
                ).astype(np.uint64)
                digits.append(d)
            for i in range(level):
                k0, k1 = keys[i]
                for j, prime in enumerate(primes):
                    digit_rows.append(digits[i] % np.uint64(prime))
                    key0_rows.append(k0[j])
                    key1_rows.append(k1[j])
                    prime_rows.append(prime)
        half = len(digit_rows)
        prime_col = np.array(prime_rows * 2, dtype=np.int64).reshape(-1, 1)
        products = self._channel_conv(
            np.vstack([digit_rows, digit_rows]),
            np.vstack([key0_rows, key1_rows]),
            prime_col,
        )
        primes_u = self._prime_column(level, repeat=batch).astype(
            np.uint64
        )
        shaped0 = products[:half].reshape(batch, level, level, params.n)
        shaped1 = products[half:].reshape(batch, level, level, params.n)
        out = []
        for b, ct in enumerate(cts):
            acc0 = ct.c0.copy()
            acc1 = ct.c1.copy()
            chunk = primes_u[b * level : (b + 1) * level]
            for i in range(level):
                acc0 = (acc0 + shaped0[b, i]) % chunk
                acc1 = (acc1 + shaped1[b, i]) % chunk
            out.append(
                RLWECiphertext(
                    c0=acc0, c1=acc1, params=params, level=level
                )
            )
        return out

    def multiply(self, key, x: RLWECiphertext, y: RLWECiphertext) -> RLWECiphertext:
        """Ciphertext-by-ciphertext product: tensor + relinearize.

        ``key`` is an :class:`RLWEKeyPair` or bare :class:`RelinKeys`
        (the evaluator never needs the secret).
        """
        return self.multiply_many(key, [(x, y)])[0]

    def multiply_many(
        self,
        key,
        pairs: Sequence[Tuple[RLWECiphertext, RLWECiphertext]],
    ) -> List[RLWECiphertext]:
        """Batched ciphertext products: one tensor pass + one
        relinearization pass over the whole batch (every ring product
        rides the engine's batch axis)."""
        pairs = list(pairs)
        if not pairs:
            return []
        return self.relinearize_many(key, self.tensor_many(pairs))

    # -- modulus switching ---------------------------------------------------

    def mod_switch(self, ct: RLWECiphertext) -> RLWECiphertext:
        """Drop the last active RNS prime (BGV modulus switching).

        Produces a ciphertext at level ``k − 1`` whose noise is scaled
        down by ``~q_k``: each component becomes ``(c − δ)/q_k`` with
        ``δ ≡ c (mod q_k)``, ``δ ≡ 0 (mod t)`` and ``|δ| ≤ t·q_k/2``
        — exact division, plaintext preserved because every chain
        prime is ≡ 1 (mod t).
        """
        return self.mod_switch_many([ct])[0]

    def mod_switch_many(
        self, cts: Sequence[RLWECiphertext]
    ) -> List[RLWECiphertext]:
        """Batched :meth:`mod_switch` (vectorized, no ring products)."""
        cts = self._check_ciphertexts(cts)
        if not cts:
            return []
        params = self.params
        if not params.is_rns:
            raise ValueError(
                "modulus switching requires RNS parameters (rns_primes)"
            )
        level = cts[0].level
        if level < 2:
            raise ValueError("already at the last level of the chain")
        q_last = params.rns_primes[level - 1]
        t_inv = pow(params.t % q_last, -1, q_last)
        new_level = level - 1
        primes = self._primes[:new_level].reshape(-1, 1)
        q_last_inv = np.array(
            [pow(q_last % int(p), -1, int(p)) for p in primes[:, 0]],
            dtype=np.int64,
        ).reshape(-1, 1)

        def switch(component: np.ndarray) -> np.ndarray:
            last = component[level - 1].astype(np.int64)
            eps = last * np.int64(t_inv) % np.int64(q_last)
            eps = np.where(eps > q_last // 2, eps - q_last, eps)
            delta = np.int64(params.t) * eps  # |δ| ≤ t·q_last/2
            head = component[:new_level].astype(np.int64)
            return (
                (head - delta[np.newaxis, :]) % primes * q_last_inv % primes
            ).astype(np.uint64)

        return [
            RLWECiphertext(
                c0=switch(ct.c0),
                c1=switch(ct.c1),
                params=params,
                c2=(switch(ct.c2) if ct.c2 is not None else None),
                level=new_level,
            )
            for ct in cts
        ]

    # -- diagnostics ---------------------------------------------------------

    def noise_budget(self, key, ct: RLWECiphertext) -> float:
        """Remaining noise headroom in bits: ``log2((q/2) / |v|_∞)``
        where ``v`` is the centered phase ``m + t·e``.  Decryption is
        reliable while the budget is positive; it shrinks with every
        homomorphic operation and is (partially) restored relative to
        the shrunken modulus by :meth:`mod_switch`."""
        params = self.params
        phase = self._phase_rows(key, [ct])
        if not params.is_rns:
            q = P
            magnitude = max(
                1, int(np.max(np.abs(_centered_lift(phase))))
            )
        else:
            q = params.modulus(ct.level)
            lifted = self._crt_lift(phase, ct.level)[0]
            magnitude = max(
                1, max(abs(x - q if x > q >> 1 else x) for x in lifted)
            )
        return math.log2(q / 2) - math.log2(magnitude)


__all__ = [
    "RLWE",
    "RLWEParams",
    "RLWECiphertext",
    "RLWEKeyPair",
    "RelinKeys",
    "default_rns_primes",
]
