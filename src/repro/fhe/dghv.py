"""The DGHV scheme over the integers, with a pluggable multiplier.

Somewhat-homomorphic encryption of bits (van Dijk et al., EUROCRYPT
2010):

- secret key: a random odd ``eta``-bit integer ``p``;
- symmetric encryption of ``m ∈ {0,1}``: ``c = q·p + 2r + m``;
- public key: ``x_i = q_i·p + 2r_i`` with ``x_0 = q_0·p`` an *exact*
  noise-free multiple of ``p`` (the Coron et al. variant the paper
  cites as [33]/[34]), so ciphertexts — including the 2·gamma-bit
  homomorphic products — can be reduced modulo ``x_0`` without
  affecting the noise; public encryption:
  ``c = (m + 2r + 2·Σ_{i∈S} x_i) mod x_0``;
- decryption: ``(c mod p) mod 2`` with ``c mod p`` the *centered*
  residue.

Every ciphertext-by-ciphertext product goes through the instance's
``multiplier`` strategy — a plain callable ``(int, int) -> int`` — so
the same scheme runs on Python ints, on :class:`repro.ssa.SSAMultiplier`
or on the accelerator model, which is how the benchmarks measure the
paper's workload end to end.  The preferred way to build a scheme is
:meth:`repro.engine.Engine.fhe`, which injects an engine-backed
strategy (batched SSA on ``software``, cycle-counted products on
``hw-model``) automatically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.fhe.params import FHEParams, TOY

Multiplier = Callable[[int, int], int]


@dataclass(frozen=True)
class KeyPair:
    """DGHV key material."""

    secret: int
    public: tuple  # (x_0, x_1, ..., x_tau)

    @property
    def x0(self) -> int:
        return self.public[0]


@dataclass
class Ciphertext:
    """A DGHV ciphertext with a tracked noise-budget estimate.

    ``noise_bits`` is an upper bound on ``log2 |c mod p|`` maintained
    through homomorphic operations; decryption is guaranteed while it
    stays below ``eta - 2``.
    """

    value: int
    noise_bits: float
    params: FHEParams

    @property
    def decryptable(self) -> bool:
        return self.noise_bits < self.params.eta - 2

    def __add__(self, other: "Ciphertext") -> "Ciphertext":
        from repro.fhe.ops import _he_add

        return _he_add(self, other)


def _centered_mod(value: int, modulus: int) -> int:
    """Residue in ``(-modulus/2, modulus/2]``."""
    r = value % modulus
    if r > modulus // 2:
        r -= modulus
    return r


class DGHV:
    """A DGHV instance: key generation, encryption, decryption.

    Parameters
    ----------
    params:
        Parameter set (see :mod:`repro.fhe.params`).
    multiplier:
        Big-integer multiplication strategy used by homomorphic
        multiplication; defaults to Python's built-in product.
    rng:
        Source of randomness (``random.Random``), injectable for
        reproducible tests.
    """

    def __init__(
        self,
        params: FHEParams = TOY,
        multiplier: Optional[Multiplier] = None,
        rng: Optional[random.Random] = None,
    ):
        params.validate()
        self.params = params
        self.multiplier = multiplier or (lambda a, b: a * b)
        self.rng = rng or random.Random()

    # -- key generation ----------------------------------------------------

    def generate_keys(self) -> KeyPair:
        """Draw a secret key and the ``tau + 1`` public elements."""
        p = self._random_odd(self.params.eta)
        # x_0 = q_0 · p exactly (q_0 odd so x_0 is odd).  In a secure
        # instantiation q_0 must additionally be rough (free of small
        # prime factors); that check is omitted here as it does not
        # affect the accelerator workload.
        q0_bits = self.params.gamma - p.bit_length()
        q0 = self._random_odd(q0_bits)
        x0 = q0 * p
        others = [
            self._public_element(p, bound=x0)
            for _ in range(self.params.tau)
        ]
        return KeyPair(secret=p, public=tuple([x0] + others))

    def _random_odd(self, bits: int) -> int:
        return self.rng.getrandbits(bits - 1) | (1 << (bits - 1)) | 1

    def _public_element(
        self, p: int, force_odd: bool = False, bound: int = 0
    ) -> int:
        """One ``x_i = q_i·p + 2r_i`` (kept below ``bound`` if given).

        ``x_i mod p`` is automatically even (it equals ``2r_i``);
        ``force_odd`` additionally makes the element itself odd, the
        DGHV requirement on ``x_0``.
        """
        gamma, rho = self.params.gamma, self.params.rho
        while True:
            q_bits = gamma - p.bit_length()
            q = self.rng.getrandbits(q_bits) | (1 << (q_bits - 1))
            r = self.rng.getrandbits(rho) - (1 << (rho - 1))
            x = q * p + 2 * r
            if x <= 0:
                continue
            if force_odd and x % 2 == 0:
                continue
            if bound and x >= bound:
                continue
            return x

    # -- encryption / decryption --------------------------------------------

    def encrypt_symmetric(self, keys: KeyPair, message: int) -> Ciphertext:
        """``c = q·p + 2r + m`` under the secret key."""
        self._check_bit(message)
        gamma, rho = self.params.gamma, self.params.rho
        p = keys.secret
        q_bits = gamma - p.bit_length()
        q = self.rng.getrandbits(q_bits) | (1 << (q_bits - 1))
        r = self.rng.getrandbits(rho) - (1 << (rho - 1))
        value = q * p + 2 * r + message
        return Ciphertext(
            value=value, noise_bits=rho + 1, params=self.params
        )

    def encrypt(self, keys: KeyPair, message: int) -> Ciphertext:
        """Public-key encryption: random subset sum modulo ``x_0``."""
        self._check_bit(message)
        rho, tau = self.params.rho, self.params.tau
        r = self.rng.getrandbits(rho) - (1 << (rho - 1))
        subset_sum = 0
        picked = 0
        for x in keys.public[1:]:
            if self.rng.getrandbits(1):
                subset_sum += x
                picked += 1
        value = (message + 2 * r + 2 * subset_sum) % keys.x0
        # |noise| ≤ 2^rho·(4·tau + 2): fresh noise plus subset noise
        # (x_0 wraps are noise-free since x_0 = q_0·p).
        noise = rho + (4 * self.params.tau + 2).bit_length()
        return Ciphertext(value=value, noise_bits=noise, params=self.params)

    def decrypt(self, keys: KeyPair, ciphertext: Ciphertext) -> int:
        """``(c mod p) mod 2`` with the centered residue."""
        return _centered_mod(ciphertext.value, keys.secret) % 2

    # -- HEScheme protocol ---------------------------------------------------

    def keygen(self) -> KeyPair:
        """:class:`repro.fhe.ops.HEScheme` spelling of
        :meth:`generate_keys`."""
        return self.generate_keys()

    def encrypt_many(
        self, keys: KeyPair, messages: List[int]
    ) -> List[Ciphertext]:
        """Encrypt a batch of bits (fresh randomness per bit)."""
        return [self.encrypt(keys, message) for message in messages]

    def decrypt_many(
        self, keys: KeyPair, ciphertexts: List[Ciphertext]
    ) -> List[int]:
        return [self.decrypt(keys, ciphertext) for ciphertext in ciphertexts]

    def add(self, x: Ciphertext, y: Ciphertext) -> Ciphertext:
        """Homomorphic XOR (unreduced — pass through gates or
        ``multiply`` with keys to fold mod ``x_0``)."""
        from repro.fhe.ops import _he_add

        return _he_add(x, y)

    def multiply(
        self, keys: KeyPair, x: Ciphertext, y: Ciphertext
    ) -> Ciphertext:
        """Homomorphic AND through the multiplier strategy, reduced
        modulo ``x_0``."""
        from repro.fhe.ops import _he_mult

        return _he_mult(self, x, y, x0=keys.x0)

    def multiply_many(self, keys: KeyPair, pairs) -> List[Ciphertext]:
        """Batched homomorphic AND (one batched multiplier pass)."""
        from repro.fhe.ops import _he_mult_many

        return _he_mult_many(self, pairs, x0=keys.x0)

    def noise_budget(self, keys: KeyPair, ciphertext: Ciphertext) -> float:
        """Remaining headroom in bits below the ``eta - 2`` ceiling."""
        return (self.params.eta - 2) - ciphertext.noise_bits

    def xor_and_eval(
        self, keys: KeyPair, bits_a, bits_b
    ) -> List[int]:
        """Demo circuit (see :func:`repro.fhe.ops._he_xor_and_eval`)."""
        from repro.fhe.ops import _he_xor_and_eval

        return _he_xor_and_eval(self, keys, bits_a, bits_b)

    def noise_of(self, keys: KeyPair, ciphertext: Ciphertext) -> int:
        """Exact noise magnitude (test/diagnostic use — needs the key)."""
        return abs(_centered_mod(ciphertext.value, keys.secret))

    @staticmethod
    def _check_bit(message: int) -> None:
        if message not in (0, 1):
            raise ValueError("DGHV encrypts single bits")
