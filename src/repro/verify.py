"""Self-verification: one call that checks the library's key invariants.

``python -m repro.cli verify`` (or :func:`run_self_check`) executes a
condensed end-to-end validation — the checks a user should see pass
before trusting any number the library prints:

1. field structure (prime, 2**96 ≡ −1, ω_64k**1024 = 8);
2. vectorized arithmetic against scalar oracles;
3. every NTT path against the O(n²) reference at small size;
4. a mid-size SSA multiply against Python integers;
5. the batched execution engine (matrix executor and
   ``multiply_many``) against the per-vector oracles;
6. the distributed accelerator (datapath fidelity) against the
   executor;
7. the analytic timing against the paper's headline numbers;
8. a DGHV encrypt–evaluate–decrypt roundtrip;
9. the Engine façade: ``software`` vs ``hw-model`` backend products
   bit-identical, ring scalar/batch polymorphism consistent;
10. the jobs layer: ``software-mp`` sharded products and transforms
    bit-identical to ``software``, ``JobScheduler`` submit/map
    ordering intact;
11. fused negacyclic plans (ψ-twist folded into stage constants)
    bit-identical to the explicit-twist ``loop``-kernel oracle, on
    both stage kernels and through the hw-model ring;
12. permutation-free (decimated) plan pairs: DIF-forward spectra are
    the natural spectra under the digit-reversal permutation, and
    cyclic/fused-negacyclic convolutions through the DIT inverse are
    bit-identical to the natural-order ``loop`` oracle, including
    through the hw-model ring;
13. the fault-tolerant runtime: a ``software-mp`` batch with one
    worker SIGKILLed mid-shard recovers automatically — the respawned
    pool replays the lost shards, the recovered products are
    bit-identical to the ``software`` backend, and the respawn is
    recorded in the backend's fault report.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Tuple


@dataclass(frozen=True)
class CheckResult:
    name: str
    ok: bool
    detail: str = ""

    def render(self) -> str:
        mark = "PASS" if self.ok else "FAIL"
        suffix = f" — {self.detail}" if self.detail else ""
        return f"[{mark}] {self.name}{suffix}"


def _check_field() -> CheckResult:
    from repro.field.roots import omega_64k
    from repro.field.solinas import P

    ok = (
        P == 2**64 - 2**32 + 1
        and pow(2, 96, P) == P - 1
        and pow(omega_64k(), 1024, P) == 8
    )
    return CheckResult("field structure (p, 2^96 = -1, w^1024 = 8)", ok)

def _check_vector() -> CheckResult:
    from repro.field.solinas import P
    from repro.field.vector import from_field_array, to_field_array, vmul

    rng = random.Random(1)
    values = [rng.randrange(P) for _ in range(256)] + [0, 1, P - 1]
    a = to_field_array(values)
    b = to_field_array(list(reversed(values)))
    want = [x * y % P for x, y in zip(values, reversed(values))]
    ok = from_field_array(vmul(a, b)) == want
    return CheckResult("vectorized GF(p) multiply vs scalar oracle", ok)


def _check_ntt_paths() -> CheckResult:
    from repro.field.solinas import P
    from repro.field.vector import from_field_array, to_field_array
    from repro.ntt.cooley_tukey import ntt_cooley_tukey
    from repro.ntt.plan import plan_for_size
    from repro.ntt.radix2 import ntt_radix2
    from repro.ntt.radix64 import ntt64_two_stage, ntt_shift_radix
    from repro.ntt.reference import dft_reference
    from repro.ntt.staged import execute_plan

    rng = random.Random(2)
    x = [rng.randrange(P) for _ in range(64)]
    ref = dft_reference(x)
    staged = from_field_array(
        execute_plan(to_field_array(x), plan_for_size(64, (8, 8)))
    )
    ok = (
        ntt_radix2(x) == ref
        and ntt_cooley_tukey(x, radices=[8, 8]) == ref
        and ntt_shift_radix(x, 64) == ref
        and ntt64_two_stage(x) == ref
        and staged == ref
    )
    return CheckResult("five NTT implementations vs O(n^2) reference", ok)


def _check_ssa() -> CheckResult:
    from repro.ssa.multiplier import SSAMultiplier

    rng = random.Random(3)
    a, b = rng.getrandbits(50_000), rng.getrandbits(50_000)
    ok = SSAMultiplier.for_bits(50_000).multiply(a, b) == a * b
    return CheckResult("50,000-bit SSA multiply vs Python ints", ok)


def _check_batch() -> CheckResult:
    import numpy as np

    from repro.field.solinas import P
    from repro.ntt.plan import plan_for_size
    from repro.ntt.staged import execute_plan, execute_plan_batch
    from repro.ssa.multiplier import SSAMultiplier

    rng = random.Random(6)
    plan = plan_for_size(256, (16, 16))
    matrix = np.array(
        [[rng.randrange(P) for _ in range(256)] for _ in range(4)],
        dtype=np.uint64,
    )
    rows_match = all(
        np.array_equal(row_out, execute_plan(row_in, plan))
        for row_in, row_out in zip(matrix, execute_plan_batch(matrix, plan))
    )
    mul = SSAMultiplier.for_bits(2048)
    pairs = [
        (rng.getrandbits(2048), rng.getrandbits(2048)) for _ in range(4)
    ]
    products_match = mul.multiply_many(pairs) == [a * b for a, b in pairs]
    return CheckResult(
        "batched executor / multiply_many vs per-vector oracles",
        rows_match and products_match,
    )


def _check_accelerator() -> CheckResult:
    import numpy as np

    from repro.field.solinas import P
    from repro.field.vector import to_field_array
    from repro.hw.accelerator import HEAccelerator
    from repro.ntt.plan import plan_for_size
    from repro.ntt.staged import execute_plan
    from repro.ssa.encode import SSAParameters

    rng = random.Random(4)
    params = SSAParameters(coefficient_bits=24, operand_coefficients=512)
    plan = plan_for_size(1024, (64, 16))
    acc = HEAccelerator(pes=4, plan=plan, params=params)
    x = to_field_array([rng.randrange(P) for _ in range(1024)])
    got, _ = acc.distributed_ntt(x, fidelity="datapath")
    ok = np.array_equal(got, execute_plan(x, plan))
    return CheckResult(
        "datapath-fidelity accelerator vs staged executor", ok
    )


def _check_timing() -> CheckResult:
    from repro.hw.timing import PAPER_TIMING

    fft = PAPER_TIMING.fft_time_us()
    mult = PAPER_TIMING.multiplication_time_us()
    ok = abs(fft - 30.72) < 0.01 and abs(mult - 122.88) < 0.01
    return CheckResult(
        "paper timing anchors",
        ok,
        f"T_FFT = {fft:.2f} us, T_MULT = {mult:.2f} us",
    )


def _check_fhe() -> CheckResult:
    from repro.fhe.dghv import DGHV
    from repro.fhe.ops import _he_add, _he_mult
    from repro.fhe.params import TOY

    scheme = DGHV(TOY, rng=random.Random(5))
    keys = scheme.generate_keys()
    ok = True
    for a in (0, 1):
        for b in (0, 1):
            ca, cb = scheme.encrypt(keys, a), scheme.encrypt(keys, b)
            ok &= scheme.decrypt(keys, _he_add(ca, cb, x0=keys.x0)) == a ^ b
            ok &= (
                scheme.decrypt(keys, _he_mult(scheme, ca, cb, x0=keys.x0))
                == a & b
            )
    return CheckResult("DGHV encrypt/XOR/AND/decrypt truth tables", ok)


def _check_engine() -> CheckResult:
    import numpy as np

    from repro.engine import Engine
    from repro.field.solinas import P

    rng = random.Random(7)
    a, b = rng.getrandbits(4096), rng.getrandbits(4096)
    software = Engine()
    hardware = Engine(backend="hw-model")
    products_match = (
        software.multiply(a, b) == hardware.multiply(a, b) == a * b
    )
    ring = software.ring(256)
    rows = np.array(
        [[rng.randrange(P) for _ in range(256)] for _ in range(3)],
        dtype=np.uint64,
    )
    spectra = ring.forward(rows)
    ring_match = all(
        np.array_equal(spectra[i], ring.forward(rows[i])) for i in range(3)
    ) and np.array_equal(ring.inverse(spectra), rows)
    return CheckResult(
        "Engine backends bit-identical; ring scalar/batch consistent",
        products_match and ring_match,
    )


def _check_jobs_mp() -> CheckResult:
    import numpy as np

    from repro.engine import Engine, ExecutionConfig
    from repro.engine.jobs import JobScheduler, MultiplyJob
    from repro.field.solinas import P

    rng = random.Random(8)
    pairs = [
        (rng.getrandbits(1024), rng.getrandbits(1024)) for _ in range(6)
    ]
    truth = [a * b for a, b in pairs]
    software = Engine()
    mp_engine = Engine(
        config=ExecutionConfig(workers=2), backend="software-mp"
    )
    try:
        left = [a for a, _ in pairs]
        right = [b for _, b in pairs]
        products_match = (
            mp_engine.multiply(left, right)
            == software.multiply(left, right)
            == truth
        )
        rows = np.array(
            [[rng.randrange(P) for _ in range(128)] for _ in range(4)],
            dtype=np.uint64,
        )
        rows_match = np.array_equal(
            mp_engine.ring(128).forward(rows),
            software.ring(128).forward(rows),
        )
        with JobScheduler(software) as jobs:
            handle = jobs.submit(MultiplyJob.batched(pairs))
            jobs_match = (
                handle.result() == truth
                and jobs.map("multiply", pairs, chunk=2) == truth
            )
    finally:
        mp_engine.close()
    return CheckResult(
        "software-mp sharding bit-identical; job queue ordered",
        products_match and rows_match and jobs_match,
    )


def _check_negacyclic_fused() -> CheckResult:
    import numpy as np

    from repro.engine import Engine
    from repro.field.solinas import P
    from repro.ntt.negacyclic import negacyclic_convolution_many
    from repro.ntt.plan import TWIST_NEGACYCLIC, plan_for_size

    rng = random.Random(9)
    n, radices = 256, (16, 4, 4)
    a = np.array(
        [[rng.randrange(P) for _ in range(n)] for _ in range(3)],
        dtype=np.uint64,
    )
    b = np.array(
        [[rng.randrange(P) for _ in range(n)] for _ in range(3)],
        dtype=np.uint64,
    )
    oracle = negacyclic_convolution_many(
        a, b, plan_for_size(n, radices, kernel="loop")
    )
    fused_ok = all(
        np.array_equal(
            oracle,
            negacyclic_convolution_many(
                a,
                b,
                plan_for_size(
                    n, radices, kernel=kernel, twist=TWIST_NEGACYCLIC
                ),
            ),
        )
        for kernel in ("loop", "limb-matmul")
    )
    # The hw ring uses the default shift-only radices ((16, 16) at 256
    # points); the ring product is factorization-independent.
    hw_ok = np.array_equal(
        oracle,
        Engine(backend="hw-model").ring(n).negacyclic_convolve(a, b),
    )
    return CheckResult(
        "fused negacyclic plans vs explicit-twist loop oracle",
        fused_ok and hw_ok,
    )


def _check_ordering() -> CheckResult:
    import numpy as np

    from repro.engine import Engine
    from repro.field.solinas import P
    from repro.ntt.convolution import cyclic_convolution_many
    from repro.ntt.negacyclic import negacyclic_convolution_many
    from repro.ntt.order import reorder_to_natural
    from repro.ntt.plan import (
        ORDER_DECIMATED,
        TWIST_NEGACYCLIC,
        plan_for_size,
    )
    from repro.ntt.staged import execute_plan_batch

    rng = random.Random(10)
    n, radices = 256, (4, 16, 4)
    a = np.array(
        [[rng.randrange(P) for _ in range(n)] for _ in range(3)],
        dtype=np.uint64,
    )
    b = np.array(
        [[rng.randrange(P) for _ in range(n)] for _ in range(3)],
        dtype=np.uint64,
    )
    natural = plan_for_size(n, radices, kernel="loop")
    decimated = plan_for_size(
        n, radices, kernel="loop", ordering=ORDER_DECIMATED
    )
    spectra_ok = np.array_equal(
        reorder_to_natural(execute_plan_batch(a, decimated), decimated),
        execute_plan_batch(a, natural),
    )
    conv_ok = np.array_equal(
        cyclic_convolution_many(a, b, decimated),
        cyclic_convolution_many(a, b, natural),
    )
    fused_ok = np.array_equal(
        negacyclic_convolution_many(
            a,
            b,
            plan_for_size(
                n,
                radices,
                kernel="limb-matmul",
                twist=TWIST_NEGACYCLIC,
                ordering=ORDER_DECIMATED,
            ),
        ),
        negacyclic_convolution_many(a, b, natural),
    )
    hw_ring = Engine(backend="hw-model").ring(n)
    hw_ok = np.array_equal(
        hw_ring.convolve(a, b),
        cyclic_convolution_many(a, b, natural),
    )
    return CheckResult(
        "permutation-free plans vs natural-order loop oracle",
        spectra_ok and conv_ok and fused_ok and hw_ok,
    )


def _check_runtime_faults() -> CheckResult:
    from repro.engine import Engine, ExecutionConfig, faultinject

    rng = random.Random(13)
    pairs = [
        (rng.getrandbits(768), rng.getrandbits(768)) for _ in range(6)
    ]
    truth = [a * b for a, b in pairs]
    left = [a for a, _ in pairs]
    right = [b for _, b in pairs]
    software = Engine()
    mp_engine = Engine(
        config=ExecutionConfig(workers=2), backend="software-mp"
    )
    try:
        with faultinject.inject("worker-kill:0"):
            recovered = mp_engine.multiply(left, right)
        identical = recovered == software.multiply(left, right) == truth
        respawned = mp_engine.backend.fault_report.respawns >= 1
    finally:
        mp_engine.close()
    return CheckResult(
        "worker kill mid-batch recovers bit-identically",
        identical and respawned,
        "" if respawned else "no respawn recorded",
    )


CHECKS: List[Callable[[], CheckResult]] = [
    _check_field,
    _check_vector,
    _check_ntt_paths,
    _check_ssa,
    _check_batch,
    _check_accelerator,
    _check_timing,
    _check_fhe,
    _check_engine,
    _check_jobs_mp,
    _check_negacyclic_fused,
    _check_ordering,
    _check_runtime_faults,
]


def run_self_check(verbose: bool = False) -> Tuple[bool, List[CheckResult]]:
    """Run every check; returns (all_ok, results)."""
    results = []
    for check in CHECKS:
        try:
            results.append(check())
        except Exception as error:  # surface, don't crash the report
            results.append(
                CheckResult(check.__name__, False, f"raised {error!r}")
            )
    all_ok = all(r.ok for r in results)
    if verbose:
        for r in results:
            print(r.render())
        print("self-check:", "ALL PASS" if all_ok else "FAILURES PRESENT")
    return all_ok, results
