"""Automated design-space exploration over :class:`ArchSpec`.

The paper reports one operating point; this module searches its
neighborhood.  A :class:`DesignSpace` enumerates candidate
configurations (PE count × FFT units × radix plan × exchange topology ×
dot/carry provisioning × clock), every candidate is priced through the
*same* cycle model the accelerator reports with
(:func:`repro.hw.accelerator.plan_schedule` + the pipelined
:class:`~repro.hw.accelerator.DistributedFFTBatchReport` schedule) on
two workloads — the paper's 64K SSA multiplication batch and an RLWE
ring-multiply batch — and the survivors are pruned to the Pareto
frontier of total cycles versus the spec's resource-census area proxy.

Evaluation runs through the :class:`repro.engine.jobs.JobScheduler`
(chunked sweep jobs over one engine), making the explorer a real
workload for the fault-tolerant runtime as well as a user-facing tool
(``repro arch sweep``).

Everything is deterministic: enumeration order is fixed, evaluation is
pure arithmetic, and two runs of :func:`explore` produce byte-identical
frontiers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.arch.spec import (
    ArchSpec,
    TOPOLOGY_HYPERCUBE,
    TOPOLOGY_ALL_TO_ALL,
    TOPOLOGY_RING,
)


@dataclass(frozen=True)
class Workload:
    """One evaluation workload: a batch of transforms plus pointwise work.

    ``transform_rows`` rows of an ``n``-point transform stream through
    the batch pipeline (forward/inverse passes share one stage
    schedule), then ``products`` component-wise product + carry-recovery
    passes over ``n`` points run on the shared units.
    """

    name: str
    n: int
    transform_rows: int
    products: int
    #: Stage radices; ``None`` uses the plan cache's default
    #: factorization for ``n``.
    radices: Optional[Tuple[int, ...]] = None


#: The two standing evaluation workloads: the paper's 64K SSA
#: multiplication (8 products = 24 transform rows + 8 dot/carry passes)
#: and an RLWE-shaped ring-multiply batch (64 products over 4096-point
#: transforms).
PAPER_WORKLOAD = Workload("ssa-64k-x8", 65536, 24, 8)
RLWE_WORKLOAD = Workload("rlwe-4096-x64", 4096, 192, 64, radices=(64, 64))
DEFAULT_WORKLOADS: Tuple[Workload, ...] = (PAPER_WORKLOAD, RLWE_WORKLOAD)


@dataclass(frozen=True)
class DesignSpace:
    """The enumerable configuration space (axes × axes × …).

    Every axis is a tuple of options; :func:`enumerate_candidates`
    takes the cartesian product in a fixed order, so candidate lists —
    and therefore frontiers — are deterministic.
    """

    pes: Tuple[int, ...] = (2, 4, 8)
    fft_units: Tuple[int, ...] = (1, 2)
    dot_product_multipliers: Tuple[int, ...] = (32, 64)
    carry_words_per_cycle: Tuple[int, ...] = (16, 64)
    banks: Tuple[int, ...] = (16,)
    clock_ns: Tuple[float, ...] = (5.0,)
    topologies: Tuple[str, ...] = (
        TOPOLOGY_HYPERCUBE,
        TOPOLOGY_RING,
        TOPOLOGY_ALL_TO_ALL,
    )
    #: Radix factorizations for the paper 64K workload (other workloads
    #: keep their own plan).
    radix_plans_64k: Tuple[Tuple[int, ...], ...] = ((64, 64, 16), (16, 64, 64))
    #: Deterministic stride-sampling cap on the enumeration.
    max_candidates: int = 512

    def size(self) -> int:
        return (
            len(self.pes)
            * len(self.fft_units)
            * len(self.dot_product_multipliers)
            * len(self.carry_words_per_cycle)
            * len(self.banks)
            * len(self.clock_ns)
            * len(self.topologies)
            * len(self.radix_plans_64k)
        )


@dataclass(frozen=True)
class DesignPoint:
    """One candidate: an architecture plus the 64K radix factorization."""

    spec: ArchSpec
    radices_64k: Tuple[int, ...] = (64, 64, 16)


@dataclass(frozen=True)
class CandidateMetrics:
    """One evaluated candidate: objectives plus per-workload detail."""

    point: DesignPoint
    #: ``((workload_name, cycles), ...)`` in workload order.
    workload_cycles: Tuple[Tuple[str, int], ...]
    area_proxy: float

    @property
    def spec(self) -> ArchSpec:
        return self.point.spec

    @property
    def total_cycles(self) -> int:
        return sum(cycles for _, cycles in self.workload_cycles)

    @property
    def total_time_us(self) -> float:
        return self.total_cycles * self.spec.clock_ns / 1000.0

    def dominates(self, other: "CandidateMetrics") -> bool:
        """Pareto dominance: no worse on both objectives, better on one."""
        return (
            self.total_cycles <= other.total_cycles
            and self.area_proxy <= other.area_proxy
            and (
                self.total_cycles < other.total_cycles
                or self.area_proxy < other.area_proxy
            )
        )

    def strictly_faster_not_larger(self, other: "CandidateMetrics") -> bool:
        """The acceptance-criterion ordering: strictly fewer cycles at
        equal-or-lower area proxy."""
        return (
            self.total_cycles < other.total_cycles
            and self.area_proxy <= other.area_proxy
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "spec": self.spec.to_dict(),
            "radices_64k": list(self.point.radices_64k),
            "workload_cycles": {
                name: cycles for name, cycles in self.workload_cycles
            },
            "total_cycles": self.total_cycles,
            "total_time_us": self.total_time_us,
            "area_proxy": self.area_proxy,
        }


def _spec_name(
    pes: int,
    units: int,
    dot: int,
    carry: int,
    banks: int,
    clock: float,
    topology: str,
    radices: Tuple[int, ...],
) -> str:
    radix_tag = "x".join(str(r) for r in radices)
    return (
        f"p{pes}-u{units}-d{dot}-c{carry}-b{banks}"
        f"-{topology}-r{radix_tag}-t{clock:g}"
    )


def enumerate_candidates(space: DesignSpace) -> List[DesignPoint]:
    """The space's candidate list, in deterministic axis-major order.

    Invalid combinations (a hypercube with a non-power-of-two PE
    count) are skipped; if the remainder exceeds
    ``space.max_candidates`` it is stride-sampled deterministically.
    """
    points: List[DesignPoint] = []
    for pes in space.pes:
        for units in space.fft_units:
            for dot in space.dot_product_multipliers:
                for carry in space.carry_words_per_cycle:
                    for banks in space.banks:
                        for clock in space.clock_ns:
                            for topology in space.topologies:
                                for radices in space.radix_plans_64k:
                                    try:
                                        spec = ArchSpec(
                                            name=_spec_name(
                                                pes, units, dot, carry,
                                                banks, clock, topology,
                                                radices,
                                            ),
                                            pes=pes,
                                            clock_ns=clock,
                                        ).with_overrides(
                                            fft_units=units,
                                            banks=banks,
                                            topology=topology,
                                            dot_product_multipliers=dot,
                                            carry_words_per_cycle=carry,
                                        )
                                    except ValueError:
                                        continue
                                    points.append(
                                        DesignPoint(spec, tuple(radices))
                                    )
    if len(points) > space.max_candidates:
        stride = -(-len(points) // space.max_candidates)
        points = points[::stride]
    return points


def _workload_plan(point: DesignPoint, workload: Workload):
    from repro.ntt.plan import PAPER_TRANSFORM_SIZE, plan_for_size

    radices = workload.radices
    if workload.n == PAPER_TRANSFORM_SIZE:
        radices = point.radices_64k
    return plan_for_size(workload.n, radices)


def evaluate_candidate(
    point: DesignPoint,
    workloads: Sequence[Workload] = DEFAULT_WORKLOADS,
) -> Optional[CandidateMetrics]:
    """Price one candidate through the accelerator's cycle model.

    Returns ``None`` for infeasible candidates (a stage's sub-transforms
    do not divide over the PEs).  The transform batch runs through the
    pipelined cross-row schedule; dot-product and carry passes use the
    spec's shared-unit formulas.
    """
    # Deferred: repro.hw.accelerator imports this package at module
    # scope, so importing it here (first call is always post-init)
    # avoids the cycle.
    from repro.hw.accelerator import (
        DistributedFFTBatchReport,
        plan_schedule,
    )

    spec = point.spec
    cycles: List[Tuple[str, int]] = []
    for workload in workloads:
        plan = _workload_plan(point, workload)
        for radix, count in plan.sub_transform_counts():
            if count % spec.pes:
                return None
        per_row = plan_schedule(spec, plan)
        batch = DistributedFFTBatchReport(
            rows=workload.transform_rows,
            per_row=per_row,
            clock_ns=spec.clock_ns,
        )
        total = batch.total_cycles + workload.products * (
            spec.dot_product_cycles(workload.n)
            + spec.carry_recovery_cycles(workload.n)
        )
        cycles.append((workload.name, total))
    return CandidateMetrics(
        point=point,
        workload_cycles=tuple(cycles),
        area_proxy=spec.area_proxy(),
    )


def pareto_frontier(
    metrics: Iterable[CandidateMetrics],
) -> List[CandidateMetrics]:
    """Non-dominated subset under (total cycles ↓, area proxy ↓).

    Sorted by cycles then area; ties on both objectives keep the first
    occurrence (deterministic for a deterministic input order).
    """
    pool = list(metrics)
    out: List[CandidateMetrics] = []
    seen: set = set()
    for candidate in sorted(
        pool, key=lambda m: (m.total_cycles, m.area_proxy)
    ):
        if any(other.dominates(candidate) for other in pool):
            continue
        key = (candidate.total_cycles, candidate.area_proxy)
        if key in seen:
            continue
        seen.add(key)
        out.append(candidate)
    return out


@dataclass(frozen=True)
class _SweepJob:
    """One chunk of candidate evaluations for the job scheduler."""

    points: Tuple[DesignPoint, ...]
    workloads: Tuple[Workload, ...]
    kind: str = "arch-sweep"

    def run(self, engine) -> List[Optional[CandidateMetrics]]:
        return [
            evaluate_candidate(point, self.workloads)
            for point in self.points
        ]


@dataclass
class ExplorationResult:
    """Everything one :func:`explore` run produced."""

    space: DesignSpace
    workloads: Tuple[Workload, ...]
    evaluated: List[CandidateMetrics]
    infeasible: int
    frontier: List[CandidateMetrics]
    paper: CandidateMetrics

    def dominating_paper(self) -> List[CandidateMetrics]:
        """Frontier members strictly faster than the paper point at
        equal-or-lower area proxy."""
        return [
            m
            for m in self.frontier
            if m.strictly_faster_not_larger(self.paper)
        ]

    def paper_on_frontier(self) -> bool:
        return any(
            m.spec == self.paper.spec
            and m.point.radices_64k == self.paper.point.radices_64k
            for m in self.frontier
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema_version": 1,
            "space_size": self.space.size(),
            "evaluated": len(self.evaluated),
            "infeasible": self.infeasible,
            "workloads": [
                {
                    "name": w.name,
                    "n": w.n,
                    "transform_rows": w.transform_rows,
                    "products": w.products,
                }
                for w in self.workloads
            ],
            "paper": self.paper.to_dict(),
            "paper_on_frontier": self.paper_on_frontier(),
            "frontier": [m.to_dict() for m in self.frontier],
            "dominating_paper": [
                m.to_dict() for m in self.dominating_paper()
            ],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render(self, limit: int = 12) -> str:
        lines = [
            f"design-space exploration: {len(self.evaluated)} candidate(s) "
            f"evaluated ({self.infeasible} infeasible), "
            f"frontier of {len(self.frontier)}",
            f"paper point: {self.paper.total_cycles:,} cycles "
            f"({self.paper.total_time_us:.1f} us), area proxy "
            f"{self.paper.area_proxy:,.0f} ALM-eq"
            + (" [on frontier]" if self.paper_on_frontier() else ""),
            f"{'config':<44} {'cycles':>12} {'time us':>9} {'area':>12}",
        ]
        for m in self.frontier[:limit]:
            marker = (
                " *" if m.strictly_faster_not_larger(self.paper) else ""
            )
            lines.append(
                f"{m.spec.name:<44} {m.total_cycles:>12,} "
                f"{m.total_time_us:>9.1f} {m.area_proxy:>12,.0f}{marker}"
            )
        if len(self.frontier) > limit:
            lines.append(f"... {len(self.frontier) - limit} more")
        dominating = self.dominating_paper()
        if dominating:
            best = dominating[0]
            saved = self.paper.total_cycles - best.total_cycles
            lines.append(
                f"* strictly dominates the paper point: best saves "
                f"{saved:,} cycles "
                f"({100.0 * saved / self.paper.total_cycles:.1f}%) at "
                f"{self.paper.area_proxy - best.area_proxy:,.0f} ALM-eq "
                f"less area"
            )
        else:
            lines.append(
                "no searched configuration strictly dominates the paper "
                "point"
            )
        return "\n".join(lines)


def paper_point() -> DesignPoint:
    """The DATE'16 operating point as a design point."""
    return DesignPoint(ArchSpec.paper_default(), (64, 64, 16))


def explore(
    space: Optional[DesignSpace] = None,
    workloads: Sequence[Workload] = DEFAULT_WORKLOADS,
    use_jobs: bool = True,
    chunk: int = 16,
) -> ExplorationResult:
    """Enumerate, evaluate and prune the design space.

    With ``use_jobs`` (the default) candidate chunks are submitted as
    :class:`_SweepJob` payloads to a private
    :class:`~repro.engine.jobs.JobScheduler`, exercising the
    fault-tolerant runtime; ``use_jobs=False`` evaluates inline (same
    results — evaluation is pure).
    """
    space = space if space is not None else DesignSpace()
    workloads = tuple(workloads)
    points = enumerate_candidates(space)
    results: List[Optional[CandidateMetrics]] = []
    if use_jobs and points:
        from repro.engine.jobs import JobScheduler

        chunks = [
            tuple(points[i : i + chunk])
            for i in range(0, len(points), chunk)
        ]
        with JobScheduler() as scheduler:
            handles = [
                scheduler.submit(_SweepJob(part, workloads))
                for part in chunks
            ]
            for handle in handles:
                results.extend(handle.result())
    else:
        results = [
            evaluate_candidate(point, workloads) for point in points
        ]
    evaluated = [m for m in results if m is not None]
    infeasible = len(results) - len(evaluated)
    paper = evaluate_candidate(paper_point(), workloads)
    if paper is None:  # pragma: no cover - the paper point is feasible
        raise RuntimeError("the paper design point must be feasible")
    pool = list(evaluated)
    if not any(
        m.spec == paper.spec and m.point.radices_64k == paper.point.radices_64k
        for m in pool
    ):
        pool.append(paper)
    frontier = pareto_frontier(pool)
    return ExplorationResult(
        space=space,
        workloads=workloads,
        evaluated=evaluated,
        infeasible=infeasible,
        frontier=frontier,
        paper=paper,
    )


def plot_frontier(result: ExplorationResult, path: str) -> Optional[str]:
    """Scatter every candidate, draw the frontier, mark the paper point.

    Best-effort: returns ``None`` (writing nothing) when matplotlib is
    unavailable, the path otherwise.
    """
    try:  # pragma: no cover - depends on the environment
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except Exception:  # pragma: no cover - headless fallback
        return None
    fig, ax = plt.subplots(figsize=(7.5, 5.0))
    xs = [m.area_proxy for m in result.evaluated]
    ys = [m.total_cycles for m in result.evaluated]
    ax.scatter(xs, ys, s=14, c="#9ecae1", label="candidates", zorder=2)
    fx = [m.area_proxy for m in result.frontier]
    fy = [m.total_cycles for m in result.frontier]
    order = sorted(range(len(fx)), key=lambda i: fx[i])
    ax.plot(
        [fx[i] for i in order],
        [fy[i] for i in order],
        "o-",
        color="#d62728",
        label="Pareto frontier",
        zorder=3,
    )
    ax.scatter(
        [result.paper.area_proxy],
        [result.paper.total_cycles],
        marker="*",
        s=220,
        color="#2ca02c",
        label="paper point",
        zorder=4,
    )
    ax.set_xlabel("area proxy (ALM-equivalents)")
    ax.set_ylabel("workload cycles (64K SSA x8 + RLWE x64)")
    ax.set_title("HE accelerator design space: cycles vs. area")
    ax.grid(True, alpha=0.3)
    ax.legend(loc="best")
    fig.tight_layout()
    fig.savefig(path, dpi=120)
    plt.close(fig)
    return path


__all__ = [
    "CandidateMetrics",
    "DesignPoint",
    "DesignSpace",
    "ExplorationResult",
    "PAPER_WORKLOAD",
    "RLWE_WORKLOAD",
    "DEFAULT_WORKLOADS",
    "Workload",
    "enumerate_candidates",
    "evaluate_candidate",
    "explore",
    "paper_point",
    "pareto_frontier",
    "plot_frontier",
]
