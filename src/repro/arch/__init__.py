"""Declarative architecture descriptions + design-space exploration.

``repro.arch`` turns the hardware model from "reproduce the paper's
design point" into a searchable space:

- :mod:`repro.arch.spec` — :class:`ArchSpec`, a frozen, validated,
  JSON-round-trippable description of one accelerator configuration
  (PE nodes with FFT-64 units, bank counts and port widths, exchange
  topology edges with per-hop delay tables, clock, dot-product and
  carry provisioning) that :class:`repro.hw.accelerator.HEAccelerator`,
  :class:`repro.hw.timing.AcceleratorTiming` and the engine's
  :class:`~repro.engine.config.ExecutionConfig` all consume;
- :mod:`repro.arch.explore` — the design-space explorer: enumerate a
  :class:`DesignSpace`, price every candidate through the cycle model
  on the paper 64K workload plus an RLWE workload, and prune to the
  Pareto frontier of time versus area proxy.
"""

from repro.arch.spec import (
    ArchSpec,
    ExchangeSpec,
    PESpec,
    DSP_ALM_EQUIV,
    M20K_ALM_EQUIV,
    TOPOLOGIES,
)
from repro.arch.explore import (
    CandidateMetrics,
    DesignPoint,
    DesignSpace,
    ExplorationResult,
    enumerate_candidates,
    evaluate_candidate,
    explore,
    pareto_frontier,
    plot_frontier,
)

__all__ = [
    "ArchSpec",
    "ExchangeSpec",
    "PESpec",
    "DSP_ALM_EQUIV",
    "M20K_ALM_EQUIV",
    "TOPOLOGIES",
    "CandidateMetrics",
    "DesignPoint",
    "DesignSpace",
    "ExplorationResult",
    "enumerate_candidates",
    "evaluate_candidate",
    "explore",
    "pareto_frontier",
    "plot_frontier",
]
