"""Declarative architecture descriptions for the hardware model.

The paper's contribution is one *design point*: four PEs built around
shift-only FFT-64 units, double-buffered banked memories, eight-lane
twiddle multiplier groups, a hypercube exchange network, 32 leftover
dot-product multipliers and a 16-word carry adder, clocked at 200 MHz.
:class:`ArchSpec` makes that point (and its neighborhood) a first-class
artifact in the style of architecture-graph accelerator models: a
frozen, validated description the cycle model consumes, with

- **nodes** — :class:`PESpec` (FFT-64 units per PE, bank counts, buffer
  port widths, twiddle lanes) replicated :attr:`ArchSpec.pes` times,
- **edges** — :class:`ExchangeSpec` (topology, per-link word rate,
  per-hop launch latency) with an explicit edge list and per-hop delay
  table,
- **derived quantities** — aggregate/bisection bandwidth, a resource
  census built from the :mod:`repro.hw.resources` primitives, and a
  scalar area proxy for design-space exploration,
- **serialization** — a stable JSON round-trip, so specs travel through
  configs, job payloads and benchmark artifacts.

``ArchSpec.paper_default()`` reproduces the DATE'16 configuration
bit-identically: every schedule the refactored
:class:`~repro.hw.accelerator.HEAccelerator` and
:class:`~repro.hw.timing.AcceleratorTiming` derive from it matches the
pre-refactor hard-coded model cycle for cycle.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hw import resources as rc

# NOTE: no module-level repro.hw imports — repro.hw.accelerator imports
# this module, so the component models feeding the resource census and
# timing queries are imported inside the methods that use them (always
# post-init, when both packages are fully constructed).

#: Supported exchange topologies.
TOPOLOGY_HYPERCUBE = "hypercube"
TOPOLOGY_RING = "ring"
TOPOLOGY_ALL_TO_ALL = "all-to-all"
TOPOLOGIES = (TOPOLOGY_HYPERCUBE, TOPOLOGY_RING, TOPOLOGY_ALL_TO_ALL)

#: Scalar area-proxy weights: rough ALM-equivalents of one DSP block
#: and one M20K block on a Stratix-V-class device (die-area ratios, not
#: synthesis results — the proxy only needs to rank configurations).
DSP_ALM_EQUIV = 25.0
M20K_ALM_EQUIV = 40.0

#: Points per 4096-point buffer array (mirrors the banked-memory model).
_ARRAY_POINTS = 4096
_WORD_BITS = 64
_M20K_BITS = 20 * 1024

#: Reference transform size for the memory/area census: the paper's
#: 64K operating point.  Area depends on how much partition a PE must
#: hold; fixing the reference keeps the proxy comparable across specs.
AREA_REFERENCE_POINTS = 65536


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


def _is_pow2(value: int) -> bool:
    return value >= 1 and value & (value - 1) == 0


@dataclass(frozen=True)
class PESpec:
    """One processing-element node of the architecture graph.

    Parameters
    ----------
    fft_units:
        Shift-only FFT-64 units per PE.  Units work on disjoint
        sub-transforms, so a stage's per-PE occupancy divides by this.
    banks:
        Memory banks per 4096-point buffer array.  More banks buy port
        width (``bank_port_words`` lanes must map to distinct banks)
        at mux-network cost in the census.
    bank_port_words:
        Words per cycle each double buffer can feed the FFT units.
        The paper's value (8) saturates one unit; narrower ports starve
        it and stretch the initiation interval.
    twiddle_multipliers:
        Inter-stage twiddle modular multipliers per FFT unit (one per
        output lane in the paper).
    """

    fft_units: int = 1
    banks: int = 16
    bank_port_words: int = 8
    twiddle_multipliers: int = 8

    def __post_init__(self) -> None:
        _require(self.fft_units >= 1, "fft_units must be >= 1")
        _require(_is_pow2(self.banks), "banks must be a power of two")
        _require(
            _is_pow2(self.bank_port_words),
            "bank_port_words must be a power of two",
        )
        _require(
            self.bank_port_words <= self.banks,
            f"bank_port_words ({self.bank_port_words}) cannot exceed "
            f"banks ({self.banks}): each port lane needs its own bank",
        )
        _require(
            self.twiddle_multipliers >= 1,
            "twiddle_multipliers must be >= 1",
        )

    @property
    def points_per_cycle(self) -> int:
        """Sustained points per cycle into one FFT unit.

        The unit consumes its eight reductor outputs per cycle when the
        buffer port can deliver them; a narrower port is the
        bottleneck.
        """
        from repro.hw.fft64_unit import POINTS_PER_CYCLE

        return min(POINTS_PER_CYCLE, self.bank_port_words)


@dataclass(frozen=True)
class ExchangeSpec:
    """The communication edges of the architecture graph.

    ``topology`` picks the edge set; ``link_words_per_cycle`` the word
    rate of each edge; ``hop_latency_cycles`` a per-hop launch latency
    added once per traversed hop class (the per-edge delay table in
    :meth:`delay_table`).  The paper point is a zero-launch-latency
    hypercube at eight words per cycle.
    """

    topology: str = TOPOLOGY_HYPERCUBE
    link_words_per_cycle: int = 8
    hop_latency_cycles: int = 0

    def __post_init__(self) -> None:
        _require(
            self.topology in TOPOLOGIES,
            f"topology must be one of {TOPOLOGIES}, "
            f"got {self.topology!r}",
        )
        _require(
            self.link_words_per_cycle >= 1,
            "link_words_per_cycle must be >= 1",
        )
        _require(
            self.hop_latency_cycles >= 0,
            "hop_latency_cycles must be >= 0",
        )

    def validate_nodes(self, pes: int) -> None:
        _require(pes >= 1, "pes must be >= 1")
        if self.topology == TOPOLOGY_HYPERCUBE:
            _require(
                _is_pow2(pes),
                f"a hypercube needs a power-of-two PE count, got {pes}",
            )

    # -- graph structure ---------------------------------------------------

    def edges(self, pes: int) -> Tuple[Tuple[int, int], ...]:
        """Directed edge list of the exchange graph for ``pes`` nodes."""
        self.validate_nodes(pes)
        if pes == 1:
            return ()
        if self.topology == TOPOLOGY_HYPERCUBE:
            dimension = pes.bit_length() - 1
            return tuple(
                (node, node ^ (1 << dim))
                for node in range(pes)
                for dim in range(dimension)
            )
        if self.topology == TOPOLOGY_RING:
            out: List[Tuple[int, int]] = []
            for node in range(pes):
                out.append((node, (node + 1) % pes))
                out.append((node, (node - 1) % pes))
            # pes == 2 degenerates to one neighbor in both directions.
            return tuple(dict.fromkeys(out))
        return tuple(
            (src, dst)
            for src in range(pes)
            for dst in range(pes)
            if src != dst
        )

    def delay_table(self, pes: int) -> Dict[Tuple[int, int], int]:
        """Per-edge launch delay (cycles before the first word lands).

        Every edge of the chosen topology carries the same per-hop
        launch latency; the table form exists so reports, tests and
        future heterogeneous topologies can query edges individually.
        """
        return {edge: self.hop_latency_cycles for edge in self.edges(pes)}

    def bisection_links(self, pes: int) -> int:
        """Directed links crossing a balanced bisection of the nodes."""
        self.validate_nodes(pes)
        if pes < 2:
            return 0
        if self.topology == TOPOLOGY_HYPERCUBE:
            return pes  # pes/2 pairs x 2 directions
        if self.topology == TOPOLOGY_RING:
            return 2 if pes == 2 else 4
        return 2 * (pes // 2) * (pes - pes // 2)

    def transfer_cycles(self, words: int) -> int:
        """Cycles to drain ``words`` over one link (no launch latency)."""
        return -(-words // self.link_words_per_cycle)

    # -- routing / cost model ----------------------------------------------

    def route_cycles(
        self, src: np.ndarray, dst: np.ndarray, pes: int
    ) -> Tuple[int, int]:
        """(worst per-link words, cycles) for one data redistribution.

        ``src``/``dst`` give the owning node of every *moving* word.
        The hypercube model is the paper's e-cube walk — packets
        correct one address bit per phase, the phase cost is the worst
        link's drain time — and reproduces the pre-`ArchSpec`
        accelerator numbers exactly at the paper parameters.  The ring
        routes each word the shorter way round and charges the most
        loaded directed link plus the longest hop chain's launch
        latency; all-to-all charges the heaviest pairwise flow.
        """
        self.validate_nodes(pes)
        if pes == 1 or src.size == 0:
            return 0, 0
        if self.topology == TOPOLOGY_HYPERCUBE:
            return self._route_hypercube(src, dst, pes)
        pair_counts = np.bincount(
            src.astype(np.int64) * pes + dst.astype(np.int64),
            minlength=pes * pes,
        ).reshape(pes, pes)
        np.fill_diagonal(pair_counts, 0)
        if self.topology == TOPOLOGY_ALL_TO_ALL:
            worst = int(pair_counts.max())
            if worst == 0:
                return 0, 0
            return worst, self.hop_latency_cycles + self.transfer_cycles(
                worst
            )
        return self._route_ring(pair_counts, pes)

    def _route_hypercube(
        self, src: np.ndarray, dst: np.ndarray, pes: int
    ) -> Tuple[int, int]:
        dimension = pes.bit_length() - 1
        total_words = 0
        total_cycles = 0
        for dim in range(dimension):
            bit = 1 << dim
            crosses = (src & bit) != (dst & bit)
            if not crosses.any():
                continue
            # Node occupied just before hop ``dim``: dims < dim already
            # corrected to destination bits.
            low_mask = bit - 1
            at_node = (src[crosses] & ~low_mask) | (dst[crosses] & low_mask)
            loads = np.bincount(at_node, minlength=pes)
            worst = int(loads.max())
            total_words += worst
            total_cycles += self.hop_latency_cycles + self.transfer_cycles(
                worst
            )
        return total_words, total_cycles

    def _route_ring(
        self, pair_counts: np.ndarray, pes: int
    ) -> Tuple[int, int]:
        edge_loads = np.zeros((pes, 2), dtype=np.int64)  # [node][cw/ccw]
        max_hops = 0
        for a in range(pes):
            for b in range(pes):
                words = int(pair_counts[a, b])
                if not words:
                    continue
                forward = (b - a) % pes
                backward = (a - b) % pes
                if forward <= backward:
                    hops, step, lane = forward, 1, 0
                else:
                    hops, step, lane = backward, -1, 1
                max_hops = max(max_hops, hops)
                node = a
                for _ in range(hops):
                    edge_loads[node, lane] += words
                    node = (node + step) % pes
        worst = int(edge_loads.max())
        if worst == 0:
            return 0, 0
        cycles = (
            self.hop_latency_cycles * max_hops
            + self.transfer_cycles(worst)
        )
        return worst, cycles


@dataclass(frozen=True)
class ArchSpec:
    """One accelerator configuration, declaratively.

    Hashable, frozen and JSON-round-trippable, so a spec can key
    accelerator pools, ride inside a pickled
    :class:`~repro.engine.config.ExecutionConfig`, and land verbatim in
    benchmark artifacts.  Validation happens at construction; the cycle
    model trusts a constructed spec.
    """

    name: str = "paper-date16"
    pes: int = 4
    clock_ns: float = 5.0
    pe: PESpec = field(default_factory=PESpec)
    exchange: ExchangeSpec = field(default_factory=ExchangeSpec)
    dot_product_multipliers: int = 32
    carry_words_per_cycle: int = 16

    def __post_init__(self) -> None:
        _require(bool(self.name), "name must be non-empty")
        _require(self.clock_ns > 0, "clock_ns must be positive")
        _require(
            self.dot_product_multipliers >= 1,
            "dot_product_multipliers must be >= 1",
        )
        _require(
            self.carry_words_per_cycle >= 1,
            "carry_words_per_cycle must be >= 1",
        )
        self.exchange.validate_nodes(self.pes)

    # -- construction ------------------------------------------------------

    @classmethod
    def paper_default(cls) -> "ArchSpec":
        """The DATE'16 operating point: P=4, 200 MHz, hypercube."""
        return cls()

    def with_overrides(self, **overrides: object) -> "ArchSpec":
        """A copy with fields replaced; nested ``pe``/``exchange``
        fields may be passed flat (``banks=8``, ``topology="ring"``)."""
        pe_fields = {"fft_units", "banks", "bank_port_words", "twiddle_multipliers"}
        ex_fields = {"topology", "link_words_per_cycle", "hop_latency_cycles"}
        pe_over = {k: overrides.pop(k) for k in list(overrides) if k in pe_fields}
        ex_over = {k: overrides.pop(k) for k in list(overrides) if k in ex_fields}
        spec = self
        if pe_over:
            spec = replace(spec, pe=replace(spec.pe, **pe_over))
        if ex_over:
            spec = replace(spec, exchange=replace(spec.exchange, **ex_over))
        if overrides:
            spec = replace(spec, **overrides)  # type: ignore[arg-type]
        return spec

    # -- timing queries ----------------------------------------------------

    def initiation_interval(self, radix: int) -> int:
        """Cycles between back-to-back sub-transforms of ``radix``."""
        return max(1, radix // self.pe.points_per_cycle)

    def stage_compute_cycles(self, sub_transforms: int, radix: int) -> int:
        """Per-PE cycles of one stage: the PE's share of the stage's
        sub-transforms through its FFT units."""
        share = sub_transforms // self.pes
        per_unit = -(-share // self.pe.fft_units)
        return per_unit * self.initiation_interval(radix)

    def dot_product_cycles(self, points: int) -> int:
        """Streaming the component-wise product over the dot bank.

        One pipeline fill plus the per-multiplier share at one product
        per cycle — ``ModularMultiplier.busy_cycles`` of the share.
        """
        from repro.hw.modmul import PIPELINE_DEPTH

        per_mul = -(-points // self.dot_product_multipliers)
        if per_mul == 0:
            return 0
        return per_mul + PIPELINE_DEPTH - 1

    def carry_recovery_cycles(self, points: int) -> int:
        return -(-points // self.carry_words_per_cycle)

    # -- graph queries -----------------------------------------------------

    def edges(self) -> Tuple[Tuple[int, int], ...]:
        return self.exchange.edges(self.pes)

    def delay_table(self) -> Dict[Tuple[int, int], int]:
        return self.exchange.delay_table(self.pes)

    def aggregate_bandwidth_words_per_cycle(self) -> int:
        """Total words per cycle the exchange fabric can move."""
        return len(self.edges()) * self.exchange.link_words_per_cycle

    def bisection_words_per_cycle(self) -> int:
        """Words per cycle crossing a balanced bisection."""
        return (
            self.exchange.bisection_links(self.pes)
            * self.exchange.link_words_per_cycle
        )

    # -- resource census / area proxy --------------------------------------

    def resource_census(self) -> Dict[str, "rc.ResourceEstimate"]:
        """Structural resource census of the whole configuration.

        Built from the same :mod:`repro.hw.resources` primitives and
        component models as the Table I report, but parameterized by
        the spec: FFT units and twiddle lanes per PE, bank and port
        counts in the buffer networks, link endpoints per topology
        degree, dot-product and carry provisioning.  Memory is sized
        for the :data:`AREA_REFERENCE_POINTS` partition.
        """
        from repro.hw import resources as rc
        from repro.hw.data_route import DataRoute
        from repro.hw.fft64_unit import FFT64Config, FFT64Unit
        from repro.hw.modmul import ModularMultiplier

        unit = FFT64Unit(name="census", config=FFT64Config.proposed())
        fft = unit.resources().scale(self.pe.fft_units)
        twiddle = ModularMultiplier.resources().scale(
            self.pe.twiddle_multipliers * self.pe.fft_units
        )
        arrays = max(
            1, -(-(AREA_REFERENCE_POINTS // self.pes) // _ARRAY_POINTS)
        )
        memory = rc.ZERO
        for _buffer in range(2):
            bits = arrays * _ARRAY_POINTS * _WORD_BITS
            blocks = self.pe.banks * arrays * max(
                1, -(-(_ARRAY_POINTS * _WORD_BITS) // (self.pe.banks * _M20K_BITS))
            )
            sram = rc.ResourceEstimate(m20k_bits=bits, m20k_blocks=blocks)
            addressing = rc.adder(8).scale(self.pe.banks * arrays)
            addressing = addressing + rc.registers(8, self.pe.banks * arrays)
            network = rc.mux(_WORD_BITS, self.pe.banks * arrays).scale(
                self.pe.bank_port_words * 2
            )
            memory = memory + sram + rc.with_overhead(addressing + network)
        route = DataRoute(name="census").resources().scale(self.pe.fft_units)
        sequencer = rc.ResourceEstimate(alms=1_500, registers=256)
        degree = (
            len(self.edges()) // self.pes if self.pes > 1 else 0
        )
        channel = rc.registers(
            _WORD_BITS, self.exchange.link_words_per_cycle * 2
        )
        engine = rc.ResourceEstimate(alms=2_200, registers=512)
        links = (channel + engine).scale(max(1, degree) if self.pes > 1 else 0)
        per_pe = fft + twiddle + memory + route + sequencer + links
        dot_bank = ModularMultiplier.resources().scale(
            self.dot_product_multipliers
        )
        carry_unit = rc.with_overhead(
            rc.adder(_WORD_BITS).scale(self.carry_words_per_cycle)
        ) + rc.registers(_WORD_BITS, self.carry_words_per_cycle)
        return {
            "pes": per_pe.scale(self.pes),
            "dot_product_bank": dot_bank,
            "carry_unit": carry_unit,
        }

    def resources(self) -> "rc.ResourceEstimate":
        from repro.hw import resources as rc

        total = rc.ZERO
        for estimate in self.resource_census().values():
            total = total + estimate
        return total

    def area_proxy(self) -> float:
        """Scalar area in ALM-equivalents (the DSE's second objective)."""
        total = self.resources()
        return (
            total.alms
            + DSP_ALM_EQUIV * total.dsp_blocks
            + M20K_ALM_EQUIV * total.m20k_blocks
        )

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "pes": self.pes,
            "clock_ns": self.clock_ns,
            "pe": {
                "fft_units": self.pe.fft_units,
                "banks": self.pe.banks,
                "bank_port_words": self.pe.bank_port_words,
                "twiddle_multipliers": self.pe.twiddle_multipliers,
            },
            "exchange": {
                "topology": self.exchange.topology,
                "link_words_per_cycle": self.exchange.link_words_per_cycle,
                "hop_latency_cycles": self.exchange.hop_latency_cycles,
            },
            "dot_product_multipliers": self.dot_product_multipliers,
            "carry_words_per_cycle": self.carry_words_per_cycle,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ArchSpec":
        try:
            pe = PESpec(**data.get("pe", {}))  # type: ignore[arg-type]
            exchange = ExchangeSpec(
                **data.get("exchange", {})  # type: ignore[arg-type]
            )
            return cls(
                name=str(data.get("name", "unnamed")),
                pes=int(data["pes"]),  # type: ignore[index]
                clock_ns=float(data["clock_ns"]),  # type: ignore[index]
                pe=pe,
                exchange=exchange,
                dot_product_multipliers=int(
                    data.get("dot_product_multipliers", 32)  # type: ignore[arg-type]
                ),
                carry_words_per_cycle=int(
                    data.get("carry_words_per_cycle", 16)  # type: ignore[arg-type]
                ),
            )
        except (KeyError, TypeError) as error:
            raise ValueError(f"malformed ArchSpec dict: {error}") from None

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ArchSpec":
        return cls.from_dict(json.loads(text))

    # -- reporting ---------------------------------------------------------

    def render(self) -> str:
        total = self.resources().rounded()
        lines = [
            f"ArchSpec {self.name!r}: {self.pes} PE(s) @ "
            f"{1000.0 / self.clock_ns:.0f} MHz ({self.clock_ns} ns)",
            f"  per PE: {self.pe.fft_units} FFT-64 unit(s), "
            f"{self.pe.banks} banks x {self.pe.bank_port_words} port "
            f"words, {self.pe.twiddle_multipliers} twiddle multiplier(s)"
            f"/unit",
            f"  exchange: {self.exchange.topology}, "
            f"{self.exchange.link_words_per_cycle} words/cycle/link, "
            f"{self.exchange.hop_latency_cycles} cycle(s) hop latency, "
            f"{len(self.edges())} directed link(s)",
            f"  shared: {self.dot_product_multipliers} dot-product "
            f"multiplier(s), {self.carry_words_per_cycle}-word carry "
            f"adder",
            f"  aggregate bandwidth: "
            f"{self.aggregate_bandwidth_words_per_cycle()} words/cycle; "
            f"bisection: {self.bisection_words_per_cycle()} words/cycle",
            f"  census: {total.alms:,.0f} ALMs, "
            f"{total.dsp_blocks:,.0f} DSP, "
            f"{total.m20k_blocks:,.0f} M20K "
            f"-> area proxy {self.area_proxy():,.0f} ALM-eq",
        ]
        return "\n".join(lines)


__all__ = [
    "ArchSpec",
    "ExchangeSpec",
    "PESpec",
    "TOPOLOGIES",
    "TOPOLOGY_HYPERCUBE",
    "TOPOLOGY_RING",
    "TOPOLOGY_ALL_TO_ALL",
    "DSP_ALM_EQUIV",
    "M20K_ALM_EQUIV",
    "AREA_REFERENCE_POINTS",
]
