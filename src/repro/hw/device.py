"""FPGA device catalog.

Published capacities for the devices the paper used: the Stratix V
5SGSMD8N3F45I4 of the final implementation (same device as the [28]
baseline) and the Cyclone V parts of the initial multi-board prototype
mentioned in Section IV / the acknowledgments.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FpgaDevice:
    """Capacity summary of an FPGA device.

    Attributes
    ----------
    alms:
        Adaptive Logic Modules.
    registers:
        Flip-flops (Stratix V carries four per ALM).
    dsp_blocks:
        Variable-precision DSP blocks (18×18 equivalents as counted by
        the paper).
    m20k_blocks:
        M20K (20 kbit) embedded memory blocks.
    """

    name: str
    alms: int
    registers: int
    dsp_blocks: int
    m20k_blocks: int

    @property
    def m20k_bits(self) -> int:
        """Total embedded SRAM capacity in bits."""
        return self.m20k_blocks * 20 * 1024

    def utilization(self, estimate) -> dict:
        """Fractional utilization of each resource class.

        ``estimate`` is a :class:`repro.hw.resources.ResourceEstimate`.
        """
        return {
            "alms": estimate.alms / self.alms,
            "registers": estimate.registers / self.registers,
            "dsp_blocks": estimate.dsp_blocks / self.dsp_blocks,
            "m20k_bits": estimate.m20k_bits / self.m20k_bits,
        }


#: The paper's implementation target (Section V), as in [28].
STRATIX_V_GSMD8 = FpgaDevice(
    name="Stratix V 5SGSMD8N3F45I4",
    alms=262_400,
    registers=1_049_600,
    dsp_blocks=1_963,
    m20k_blocks=2_567,
)

#: Low-end device of the first multi-board prototype (2015 Altera award).
CYCLONE_V_PROTOTYPE = FpgaDevice(
    name="Cyclone V 5CSEMA5",
    alms=32_070,
    registers=128_280,
    dsp_blocks=87,
    m20k_blocks=397,
)
