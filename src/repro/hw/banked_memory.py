"""Two-dimensional banked memory buffer (paper Fig. 5).

A 4×4 array of dual-port SRAM banks, each 256 words × 64 bits (two
Altera M20K blocks), holding 4096 points per array.  Access parallelism
is eight words per clock cycle on each port: reads are served on one
port of every bank ("column-wise" network) and writes on the other
("row-wise" network), so a concurrent read and write stream never
contend.

The paper states the design goal — "a simple linear banked memory
ensures parallel read accesses ... but it would cause write accesses to
collide on the same bank" — without printing the exact mapping.  We use
the classic diagonal-skew mapping

    ``bank(i) = (i + i // 16) mod 16``,  ``word(i) = i // 16``

which provably serves both access shapes the datapath produces:

- *sequential* octets ``{b, b+1, ..., b+7}`` (I/O streaming and
  column feeds), and
- *8-spaced* octets ``{b, b+8, ..., b+56}`` (the FFT-64 unit's column
  reads ``a[8i+j]`` and the shared-reductor writeback),

while the linear interleave ``bank(i) = i mod 16`` fails on the second
shape — the comparison the tests make explicit.

The model stores real values, enforces per-port beat discipline, and
raises :class:`BankConflictError` when a beat touches a bank twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.hw import resources as rc

#: Geometry fixed by the paper.
BANK_ROWS = 4
BANK_COLS = 4
BANK_DEPTH = 256
WORD_BITS = 64
#: Words transferred per beat on each port.
ACCESS_WIDTH = 8
#: Points held by one 4×4 array.
ARRAY_POINTS = BANK_ROWS * BANK_COLS * BANK_DEPTH
#: M20K blocks per bank (a 256×64 bank needs two M20K).
M20K_PER_BANK = 2

_BANKS = BANK_ROWS * BANK_COLS


class BankConflictError(RuntimeError):
    """An access beat touched the same bank more than once."""


@dataclass
class MemoryBank:
    """One dual-port SRAM bank: 256 × 64-bit words (two M20K blocks)."""

    row: int
    col: int
    data: List[int] = field(default_factory=lambda: [0] * BANK_DEPTH)
    reads: int = 0
    writes: int = 0

    def read(self, address: int) -> int:
        self.reads += 1
        return self.data[address]

    def write(self, address: int, value: int) -> None:
        self.writes += 1
        self.data[address] = value


def skewed_bank(index: int) -> int:
    """Diagonal-skew bank index for a point (see module docstring).

    Within every 16-word row the mapping is a rotation, so
    ``(bank, word)`` remains bijective; across rows the rotation
    advances by one, which is what spreads strided octets (strides 1,
    2, 4 and 8 — every access shape the radix-8/16/32/64 dataflows
    produce) over distinct banks.
    """
    return (index + index // _BANKS) % _BANKS


def linear_bank(index: int) -> int:
    """Naive linear interleave — kept for the conflict demonstration."""
    return index % _BANKS


class BankedMemory:
    """One 4096-point 4×4 banked array with dual-port beat discipline."""

    def __init__(self, name: str = "banked_memory", skew: bool = True):
        self.name = name
        self.skew = skew
        self.banks = [
            [MemoryBank(r, c) for c in range(BANK_COLS)]
            for r in range(BANK_ROWS)
        ]
        self.read_beats = 0
        self.write_beats = 0

    def map_address(self, index: int) -> Tuple[int, int, int]:
        """Return ``(bank_row, bank_col, word_address)`` for a point."""
        if not 0 <= index < ARRAY_POINTS:
            raise IndexError(f"point {index} outside array")
        bank = skewed_bank(index) if self.skew else linear_bank(index)
        return bank // BANK_COLS, bank % BANK_COLS, index // _BANKS

    def _check_conflicts(self, indices: Sequence[int], port: str) -> None:
        seen: Dict[Tuple[int, int], int] = {}
        for index in indices:
            row, col, _ = self.map_address(index)
            key = (row, col)
            if key in seen:
                raise BankConflictError(
                    f"{self.name}: {port} beat touches bank ({row},{col}) "
                    f"for both points {seen[key]} and {index}"
                )
            seen[key] = index

    def read_beat(self, indices: Sequence[int]) -> List[int]:
        """Read up to eight points in one cycle on the read port."""
        if len(indices) > ACCESS_WIDTH:
            raise ValueError("at most eight words per beat")
        self._check_conflicts(indices, "read")
        self.read_beats += 1
        out = []
        for index in indices:
            row, col, word = self.map_address(index)
            out.append(self.banks[row][col].read(word))
        return out

    def write_beat(
        self, indices: Sequence[int], values: Sequence[int]
    ) -> None:
        """Write up to eight points in one cycle on the write port."""
        if len(indices) != len(values):
            raise ValueError("index/value length mismatch")
        if len(indices) > ACCESS_WIDTH:
            raise ValueError("at most eight words per beat")
        self._check_conflicts(indices, "write")
        self.write_beats += 1
        for index, value in zip(indices, values):
            row, col, word = self.map_address(index)
            self.banks[row][col].write(word, value)

    def load(self, values: Sequence[int], base: int = 0) -> None:
        """Bulk backdoor load (initialization, not a timed access)."""
        for offset, value in enumerate(values):
            row, col, word = self.map_address(base + offset)
            self.banks[row][col].data[word] = value

    def dump(self, count: int, base: int = 0) -> List[int]:
        """Bulk backdoor read (verification, not a timed access)."""
        out = []
        for offset in range(count):
            row, col, word = self.map_address(base + offset)
            out.append(self.banks[row][col].data[word])
        return out

    def resources(self) -> rc.ResourceEstimate:
        """M20K blocks plus per-bank address registers.

        The 8-lane port routing networks are shared per buffer and
        accounted at the PE level
        (:meth:`repro.hw.pe.ProcessingElement.resource_breakdown`).
        """
        sram = rc.ResourceEstimate(
            m20k_bits=ARRAY_POINTS * WORD_BITS,
            m20k_blocks=_BANKS * M20K_PER_BANK,
        )
        addressing = rc.adder(8).scale(_BANKS) + rc.registers(8, _BANKS)
        return sram + rc.with_overhead(addressing)
