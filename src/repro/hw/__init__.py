"""Models of the FPGA accelerator (paper Sections IV–V).

Three complementary views of the same architecture:

- **functional** — bit-exact datapaths (shift-based FFT-64 unit, DSP
  modular multipliers, banked memories) validated against the
  :mod:`repro.field` / :mod:`repro.ntt` oracles;
- **cycle** — clocked simulation on the :mod:`repro.sim` kernel and a
  transaction-level distributed-FFT executor with per-PE cycle ledgers;
- **cost** — a structural resource census (ALMs / registers / DSP /
  M20K) over the same component tree, evaluated against the device
  catalog to regenerate Table I.

The analytic timing model of Section V lives in
:mod:`repro.hw.timing` and is cross-checked against the simulation.
"""

from repro.hw.device import FpgaDevice, STRATIX_V_GSMD8, CYCLONE_V_PROTOTYPE
from repro.hw.resources import ResourceEstimate, ResourceReport
from repro.hw.modmul import ModularMultiplier
from repro.hw.fft64_unit import FFT64Unit, FFT64Config
from repro.hw.fft64_baseline import BaselineFFT64Unit
from repro.hw.banked_memory import BankedMemory
from repro.hw.pe import ProcessingElement
from repro.hw.hypercube import HypercubeTopology
from repro.hw.accelerator import (
    DistributedFFTBatchReport,
    DistributedFFTReport,
    HEAccelerator,
)
from repro.hw.timing import AcceleratorTiming, PAPER_TIMING, BASELINE_TIMING
from repro.hw.reports import table1_report, table2_report
from repro.hw.fft64_pipeline import FFT64Pipeline
from repro.hw.deployment import (
    DeploymentSpec,
    evaluate_deployment,
    STRATIX_ON_CHIP,
    CYCLONE_MULTI_BOARD,
)
from repro.hw.batch import (
    schedule_batch,
    measure_software_batch,
    BatchSchedule,
    ThroughputComparison,
)
from repro.hw.power import estimate_power, energy_comparison
from repro.hw.controller import AcceleratorController, multiply_program

__all__ = [
    "FpgaDevice",
    "STRATIX_V_GSMD8",
    "CYCLONE_V_PROTOTYPE",
    "ResourceEstimate",
    "ResourceReport",
    "ModularMultiplier",
    "FFT64Unit",
    "FFT64Config",
    "BaselineFFT64Unit",
    "BankedMemory",
    "ProcessingElement",
    "HypercubeTopology",
    "HEAccelerator",
    "DistributedFFTReport",
    "DistributedFFTBatchReport",
    "AcceleratorTiming",
    "PAPER_TIMING",
    "BASELINE_TIMING",
    "table1_report",
    "table2_report",
    "FFT64Pipeline",
    "DeploymentSpec",
    "evaluate_deployment",
    "STRATIX_ON_CHIP",
    "CYCLONE_MULTI_BOARD",
    "schedule_batch",
    "measure_software_batch",
    "ThroughputComparison",
    "BatchSchedule",
    "estimate_power",
    "energy_comparison",
    "AcceleratorController",
    "multiply_program",
]
