"""Analytic performance model (paper Section V formulas, generalized).

The paper derives its headline numbers at T_C = 5 ns (200 MHz) and
P = 4 processing elements::

    T_FFT     = 2·(T_C·8·1024)/P + (T_C·2)·4096/P            ≈ 30.7 µs
    T_DOTPROD = T_C·65536/32                                  ≈ 10.2 µs
    T_CARRY   ≈ 20 µs
    T_MULT    = 3·T_FFT + T_DOTPROD + T_CARRY                 ≈ 122 µs

:class:`AcceleratorTiming` reproduces these as the special case of a
general model parameterized by the transform plan, PE count, clock and
multiplier/adder provisioning — so the same class also yields the [28]
baseline column of Table II (a single engine, i.e. P = 1, with its
dot-product provisioning) and the PE-scaling sweep of the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.ntt.plan import TransformPlan, paper_64k_plan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.arch.spec import ArchSpec

#: Output points per cycle of one FFT unit (eight shared reductors).
POINTS_PER_CYCLE = 8
#: Dot-product modular multipliers provisioned from leftover DSPs
#: ("the remaining resources can accommodate at least 32 additional
#: modular multipliers", Section V).
DOT_PRODUCT_MULTIPLIERS = 32
#: Carry-recovery adder streaming width (16 words/cycle gives the
#: paper's ≈20 µs over 64K digits at 5 ns).
CARRY_RECOVERY_WORDS_PER_CYCLE = 16
#: Transforms per SSA multiplication: two forward plus one inverse.
TRANSFORMS_PER_MULTIPLY = 3


@dataclass(frozen=True)
class AcceleratorTiming:
    """Closed-form timing of one accelerator configuration."""

    pes: int = 4
    clock_ns: float = 5.0
    plan: TransformPlan = field(default_factory=paper_64k_plan)
    dot_product_multipliers: int = DOT_PRODUCT_MULTIPLIERS
    carry_words_per_cycle: int = CARRY_RECOVERY_WORDS_PER_CYCLE
    #: When set, FFT occupancy comes from the spec (FFT units per PE,
    #: buffer port widths); the closed-form dot/carry formulas read the
    #: matching scalar fields, which :meth:`for_arch` copies from it.
    arch: Optional["ArchSpec"] = None

    @classmethod
    def for_arch(
        cls, arch: "ArchSpec", plan: Optional[TransformPlan] = None
    ) -> "AcceleratorTiming":
        """The closed-form model of one declarative configuration."""
        return cls(
            pes=arch.pes,
            clock_ns=arch.clock_ns,
            plan=plan if plan is not None else paper_64k_plan(),
            dot_product_multipliers=arch.dot_product_multipliers,
            carry_words_per_cycle=arch.carry_words_per_cycle,
            arch=arch,
        )

    # -- FFT ---------------------------------------------------------------

    def fft_stage_cycles(self) -> List[Tuple[int, int]]:
        """Per stage: (radix, cycles per PE).

        A radix-R sub-transform occupies the unit for R/8 cycles; each
        PE executes its 1/P share back-to-back (divided over the FFT
        units when an :class:`ArchSpec` provisions more than one).
        """
        out = []
        for radix, count in self.plan.sub_transform_counts():
            if self.arch is not None:
                out.append(
                    (radix, self.arch.stage_compute_cycles(count, radix))
                )
                continue
            interval = max(1, radix // POINTS_PER_CYCLE)
            out.append((radix, (count // self.pes) * interval))
        return out

    def fft_cycles(self) -> int:
        return sum(cycles for _, cycles in self.fft_stage_cycles())

    def fft_time_us(self) -> float:
        """The T_FFT formula (30.72 µs at the paper operating point)."""
        return self.fft_cycles() * self.clock_ns / 1000.0

    # -- dot product ---------------------------------------------------------

    def dot_product_cycles(self) -> int:
        return -(-self.plan.n // self.dot_product_multipliers)

    def dot_product_time_us(self) -> float:
        """T_DOTPROD (10.24 µs at the paper operating point)."""
        return self.dot_product_cycles() * self.clock_ns / 1000.0

    # -- carry recovery -------------------------------------------------------

    def carry_recovery_cycles(self) -> int:
        return -(-self.plan.n // self.carry_words_per_cycle)

    def carry_recovery_time_us(self) -> float:
        """T_CARRY (≈20.5 µs at the paper operating point)."""
        return self.carry_recovery_cycles() * self.clock_ns / 1000.0

    # -- full multiplication ---------------------------------------------------

    def multiplication_cycles(self) -> int:
        return (
            TRANSFORMS_PER_MULTIPLY * self.fft_cycles()
            + self.dot_product_cycles()
            + self.carry_recovery_cycles()
        )

    def multiplication_time_us(self) -> float:
        """T_MULT (≈122.9 µs at the paper operating point)."""
        return self.multiplication_cycles() * self.clock_ns / 1000.0

    def phase_breakdown_us(self) -> Dict[str, float]:
        return {
            "fft_x3": TRANSFORMS_PER_MULTIPLY * self.fft_time_us(),
            "dot_product": self.dot_product_time_us(),
            "carry_recovery": self.carry_recovery_time_us(),
        }


#: The paper's configuration (P = 4, 200 MHz, 64K plan).
PAPER_TIMING = AcceleratorTiming()

#: The [28] baseline modeled on the same formulas: one engine (P = 1)
#: with the leftover-DSP dot-product provisioning implied by its 720
#: DSP budget.  Yields 122.88·4 ≈ 125 µs per FFT and ≈ 405 µs per
#: multiplication — the Table II reference column.
BASELINE_TIMING = AcceleratorTiming(pes=1, dot_product_multipliers=26)


#: Published execution times the paper compares against (Table II).
PUBLISHED_RESULTS = {
    "proposed": {"fft_us": 30.7, "mult_us": 122.0},
    "wang_huang_fpga[28]": {"fft_us": 125.0, "mult_us": 405.0},
    "wang_vlsi_asic[30]": {"fft_us": None, "mult_us": 206.0},
    "wang_gpu[26]": {"fft_us": 250.0, "mult_us": 765.0},
    "wang_gpu[27]": {"fft_us": None, "mult_us": 583.0},
}
