"""Processing Element (paper Fig. 1).

One node of the distributed accelerator: the Radix-64/16 FFT unit,
double-buffered banked memory, a group of eight twiddle-factor modular
multipliers, the data route (address generator), and the hypercube link
interface.  "While a buffer is feeding current input values, the other
one is filled with new values coming partly from the same node and
partly from one of its neighbors."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.hw import resources as rc
from repro.hw.banked_memory import ARRAY_POINTS, BankedMemory
from repro.hw.data_route import DataRoute
from repro.hw.fft64_unit import FFT64Config, FFT64Unit
from repro.hw.hypercube import HypercubeTopology
from repro.hw.modmul import ModularMultiplier

#: Twiddle multipliers per PE: one per output lane of the FFT unit.
TWIDDLE_MULTIPLIERS = 8


@dataclass
class PECounters:
    """Activity counters accumulated across a run."""

    fft_cycles: int = 0
    twiddle_products: int = 0
    words_sent: int = 0
    words_received: int = 0


class ProcessingElement:
    """Functional + cost model of one PE."""

    def __init__(
        self,
        index: int,
        partition_points: int,
        config: Optional[FFT64Config] = None,
    ):
        self.index = index
        self.partition_points = partition_points
        self.name = f"pe{index}"
        self.fft_unit = FFT64Unit(
            name=f"{self.name}.fft64",
            config=config or FFT64Config.proposed(),
        )
        self.twiddle_multipliers = [
            ModularMultiplier(name=f"{self.name}.modmul{i}")
            for i in range(TWIDDLE_MULTIPLIERS)
        ]
        self.data_route = DataRoute(name=f"{self.name}.route")
        arrays = self._arrays_per_buffer(partition_points)
        self.buffers = [
            [
                BankedMemory(name=f"{self.name}.buf{b}.arr{a}")
                for a in range(arrays)
            ]
            for b in range(2)
        ]
        #: Which buffer currently feeds the FFT unit (double buffering).
        self.active_buffer = 0
        self.counters = PECounters()

    @staticmethod
    def _arrays_per_buffer(points: int) -> int:
        """4096-point arrays needed to hold this PE's partition."""
        return max(1, -(-points // ARRAY_POINTS))

    # -- datapath operations ---------------------------------------------

    def run_sub_transform(
        self, values: Sequence[int], radix: int = 64
    ) -> List[int]:
        """One sub-transform through the FFT unit (cycle-counted)."""
        out = self.fft_unit.transform(values, radix)
        self.counters.fft_cycles += self.fft_unit.initiation_interval(radix)
        return out

    def apply_twiddles(
        self, values: Sequence[int], twiddles: Sequence[int]
    ) -> List[int]:
        """Inter-stage twiddle products on the eight-lane multiplier bank."""
        out = []
        for lane, (value, twiddle) in enumerate(zip(values, twiddles)):
            multiplier = self.twiddle_multipliers[lane % TWIDDLE_MULTIPLIERS]
            if twiddle == 1:
                out.append(int(value))
            else:
                out.append(multiplier.multiply(int(value), int(twiddle)))
                self.counters.twiddle_products += 1
        return out

    def swap_buffers(self) -> None:
        """End-of-stage double-buffer swap."""
        self.active_buffer ^= 1

    # -- cost --------------------------------------------------------------

    def resources(self, hypercube_dimension: int = 2) -> rc.ResourceEstimate:
        """Census of the full PE (Fig. 1 inventory)."""
        total = rc.ZERO
        for estimate in self.resource_breakdown(hypercube_dimension).values():
            total = total + estimate
        return total

    def resource_breakdown(
        self, hypercube_dimension: int = 2
    ) -> Dict[str, rc.ResourceEstimate]:
        """Per-subsystem view used by the Table I report."""
        memory = rc.ZERO
        for buffer in self.buffers:
            for array in buffer:
                memory = memory + array.resources()
            # Shared 8-lane read and write networks across the buffer's
            # banks (one mux leg per lane and port).
            banks = 16 * len(buffer)
            network = rc.mux(64, banks).scale(8 * 2)
            memory = memory + rc.with_overhead(network)
        # Per-node stage sequencer: drives the compute/exchange/swap
        # schedule of Fig. 2 (stage counters, buffer-select state,
        # handshake with the exchange engines).
        sequencer = rc.ResourceEstimate(alms=1_500, registers=256)
        return {
            "fft64_unit": self.fft_unit.resources(),
            "twiddle_multipliers": ModularMultiplier.resources().scale(
                TWIDDLE_MULTIPLIERS
            ),
            "banked_memory": memory,
            "data_route": self.data_route.resources(),
            "stage_sequencer": sequencer,
            "hypercube_links": HypercubeTopology.link_resources().scale(
                max(1, hypercube_dimension)
            ),
        }
