"""DSP-block modular multiplier (paper Section IV-d).

64×64-bit product from four 32×32-bit DSP multipliers combined
schoolbook-style, then reduced with Equation 4.  Each 32×32 multiplier
occupies two DSP blocks on Stratix V, so one modular multiplier costs
eight DSP blocks; partial-product summation and the reduction are soft
logic.

The functional path is bit-exact: it computes through the same 32-bit
partial products the hardware would, and is validated against
``(a*b) % p``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.field.reduction import normalize_eq4, addmod_correct
from repro.field.solinas import P
from repro.hw import resources as rc

_MASK32 = (1 << 32) - 1

#: DSP blocks per 32×32 multiplier on Stratix V.
DSP_PER_32X32 = 2
#: 32×32 partial products in the schoolbook 64×64 decomposition.
PARTIAL_PRODUCTS = 4
#: Pipeline depth: DSP stage, two combine stages, normalize, addmod.
PIPELINE_DEPTH = 5


@dataclass
class ModularMultiplier:
    """One 64×64 → 64-bit modular multiplier.

    ``throughput`` is one result per cycle once the ``PIPELINE_DEPTH``
    latency is filled; ``operations`` counts results produced, so the
    busy-cycle total for ``n`` back-to-back products is
    ``n + PIPELINE_DEPTH - 1``.
    """

    name: str = "modmul"
    operations: int = 0

    def multiply(self, a: int, b: int) -> int:
        """Bit-exact product through the four-DSP datapath."""
        if not (0 <= a < P and 0 <= b < P):
            raise ValueError("operands must be canonical residues")
        a0, a1 = a & _MASK32, a >> 32
        b0, b1 = b & _MASK32, b >> 32
        # The four DSP partial products.
        p00 = a0 * b0
        p01 = a0 * b1
        p10 = a1 * b0
        p11 = a1 * b1
        # Schoolbook combination into a 128-bit value (wide == a*b < p²).
        wide = p00 + ((p01 + p10) << 32) + (p11 << 64)
        # Eq. 4 normalize + AddMod — the same two hardware stages the
        # FFT-64 reductors use.
        self.operations += 1
        return addmod_correct(normalize_eq4(wide))

    def busy_cycles(self, products: int) -> int:
        """Cycles to stream ``products`` results through the pipeline."""
        if products == 0:
            return 0
        return products + PIPELINE_DEPTH - 1

    @staticmethod
    def resources() -> rc.ResourceEstimate:
        """Cost of one modular multiplier.

        Eight DSP blocks; soft logic for the partial-product adders
        (two 96-bit adds), the Eq. 4 normalize (two 33-bit adds plus a
        64-bit add/sub) and the AddMod correction, plus pipeline
        registers at each of the five stages.
        """
        combine = rc.adder(96) + rc.adder(128)
        normalize = rc.adder(33) + rc.adder(34) + rc.adder(66)
        addmod = rc.adder(65) + rc.mux(64, 3)
        pipeline = rc.registers(128, 1) + rc.registers(66, 1) + rc.registers(64, 1)
        soft = rc.with_overhead(combine + normalize + addmod)
        return soft + pipeline + rc.ResourceEstimate(
            dsp_blocks=PARTIAL_PRODUCTS * DSP_PER_32X32
        )
