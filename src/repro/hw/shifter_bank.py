"""Shift-based twiddle units (the "shifter banks" of Figs. 3 and 4).

Multiplication by a power of two modulo ``p`` is a constant shift with
sign handling (``2**96 ≡ -1``).  A *fixed* shift costs only routing; a
*selectable* shift costs a mux tree over the wired positions.  The
paper's accumulator-block optimization reduces the selectable positions
from eight to four (shifts 0/24/48/72 plus a subtract flag).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

from repro.field.solinas import ORDER_OF_TWO, mul_by_pow2
from repro.hw import resources as rc


def signed_shift(exponent: int) -> Tuple[int, bool]:
    """Normalize a power-of-two exponent to ``(shift < 96, negate)``.

    The hardware wires shifts below 96 bits and folds the rest through
    ``2**96 ≡ -1`` into a subtraction at the accumulator.
    """
    exponent %= ORDER_OF_TWO
    if exponent >= 96:
        return exponent - 96, True
    return exponent, False


@dataclass
class ShifterBank:
    """A bank of shifters applying per-lane power-of-two twiddles.

    Parameters
    ----------
    name:
        Instance name for reports.
    width:
        Input operand width in bits (sets the mux cost).
    shift_sets:
        For each lane, the collection of shift amounts it must be able
        to apply.  A single-element set is a fixed shift (free);
        larger sets cost a mux over the wired positions.
    """

    name: str
    width: int
    shift_sets: Sequence[Sequence[int]]
    operations: int = 0

    def apply(self, lane: int, value: int, exponent: int) -> int:
        """Multiply ``value`` by ``2**exponent`` on the given lane.

        Functional path — asserts the lane is actually wired for the
        requested shift, which is how tests catch schedule bugs.
        """
        exponent %= ORDER_OF_TWO
        if exponent not in self.shift_sets[lane]:
            raise ValueError(
                f"{self.name}: lane {lane} not wired for shift {exponent}"
            )
        self.operations += 1
        return mul_by_pow2(value, exponent)

    def resources(self) -> rc.ResourceEstimate:
        """Selection cost: a mux per lane over its wired positions."""
        total = rc.ZERO
        for shifts in self.shift_sets:
            positions = len(set(s % ORDER_OF_TWO for s in shifts))
            total = total + rc.barrel_shifter(self.width, positions)
        return total
