"""Deployment models: on-chip Stratix V vs the multi-board prototype.

Section IV: "The solution was initially prototyped on a multi-board
platform based on low-end devices (Altera Cyclone V) then extended to a
hybrid on-/off-chip solution relying on a larger device".  This module
captures what changes between those deployments:

- device capacity (does a PE fit? how many modular multipliers?),
- link bandwidth (on-chip channels move 8 words/cycle; off-chip
  board-to-board links far less),
- clock rate.

The FFT latency generalizes the Section V formula with communication
*exposure*: each of the ``d`` e-cube hops moves ``n/(2P)`` words per
node; whatever does not fit under the next compute stage stalls the
pipeline.  On-chip at the paper's operating point the exchange hides
exactly (the l > d argument); on a multi-board prototype it does not —
which is the quantitative story behind the paper's move to a single
large device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.hw.device import CYCLONE_V_PROTOTYPE, STRATIX_V_GSMD8, FpgaDevice
from repro.hw.fft64_unit import FFT64Unit
from repro.hw.pe import ProcessingElement
from repro.hw.timing import TRANSFORMS_PER_MULTIPLY
from repro.ntt.plan import TransformPlan, paper_64k_plan


@dataclass(frozen=True)
class DeploymentSpec:
    """One way of physically realizing the accelerator."""

    name: str
    device: FpgaDevice
    pes: int
    pes_per_device: int
    clock_ns: float
    #: 64-bit words per cycle across one inter-PE link.
    link_words_per_cycle: int
    dot_product_multipliers: int

    @property
    def devices_needed(self) -> int:
        return -(-self.pes // self.pes_per_device)


#: The paper's final implementation: everything in one Stratix V.
STRATIX_ON_CHIP = DeploymentSpec(
    name="Stratix V on-chip (paper)",
    device=STRATIX_V_GSMD8,
    pes=4,
    pes_per_device=4,
    clock_ns=5.0,
    link_words_per_cycle=8,
    dot_product_multipliers=32,
)

#: The initial prototype: one PE per Cyclone V board; links cross board
#: boundaries on serial transceivers (~1 word/cycle at the lower clock).
CYCLONE_MULTI_BOARD = DeploymentSpec(
    name="Cyclone V multi-board prototype",
    device=CYCLONE_V_PROTOTYPE,
    pes=4,
    pes_per_device=1,
    clock_ns=10.0,
    link_words_per_cycle=1,
    dot_product_multipliers=8,
)


@dataclass(frozen=True)
class StageBudget:
    radix: int
    compute_cycles: int
    exchange_cycles: int
    exposed_cycles: int


@dataclass(frozen=True)
class DeploymentReport:
    spec: DeploymentSpec
    stages: Tuple[StageBudget, ...]
    fits: bool
    fit_notes: Tuple[str, ...]

    @property
    def fft_cycles(self) -> int:
        return sum(s.compute_cycles + s.exposed_cycles for s in self.stages)

    @property
    def fft_time_us(self) -> float:
        return self.fft_cycles * self.spec.clock_ns / 1000.0

    def multiplication_time_us(self, n: int) -> float:
        dot = -(-n // self.spec.dot_product_multipliers)
        carry = -(-n // 16)
        cycles = TRANSFORMS_PER_MULTIPLY * self.fft_cycles + dot + carry
        return cycles * self.spec.clock_ns / 1000.0

    def render(self) -> str:
        lines = [
            f"{self.spec.name}: {self.spec.pes} PEs on "
            f"{self.spec.devices_needed} x {self.spec.device.name}",
            f"  fits: {self.fits}"
            + (f" ({'; '.join(self.fit_notes)})" if self.fit_notes else ""),
            f"  T_FFT = {self.fft_time_us:.2f} us "
            f"({self.fft_cycles} cycles at {1000 / self.spec.clock_ns:.0f} MHz)",
        ]
        for i, s in enumerate(self.stages):
            exposure = (
                f", {s.exposed_cycles} EXPOSED"
                if s.exposed_cycles
                else " (hidden)"
            )
            comm = (
                f"; exchange {s.exchange_cycles} cycles{exposure}"
                if s.exchange_cycles
                else ""
            )
            lines.append(
                f"    stage {i}: radix-{s.radix}, "
                f"{s.compute_cycles} compute{comm}"
            )
        return "\n".join(lines)


def evaluate_deployment(
    spec: DeploymentSpec, plan: TransformPlan = None
) -> DeploymentReport:
    """Latency and fit analysis of a deployment."""
    if plan is None:
        plan = paper_64k_plan()
    n = plan.n
    counts = plan.sub_transform_counts()

    compute = [
        (count // spec.pes) * FFT64Unit.initiation_interval(radix)
        for radix, count in counts
    ]
    dimension = max(0, spec.pes.bit_length() - 1)
    # One redistribution after the first stage: d hops of n/(2P) words.
    exchange_after = [0] * len(counts)
    if spec.pes > 1 and len(counts) > 1:
        per_hop = n // (2 * spec.pes)
        hop_cycles = -(-per_hop // spec.link_words_per_cycle)
        exchange_after[0] = dimension * hop_cycles

    stages: List[StageBudget] = []
    for index, ((radix, _), comp) in enumerate(zip(counts, compute)):
        exchange = exchange_after[index]
        follower = compute[index + 1] if index + 1 < len(compute) else 0
        exposed = max(0, exchange - follower)
        stages.append(
            StageBudget(
                radix=radix,
                compute_cycles=comp,
                exchange_cycles=exchange,
                exposed_cycles=exposed,
            )
        )

    notes = []
    pe = ProcessingElement(0, n // spec.pes)
    per_device = pe.resources(dimension).scale(spec.pes_per_device)
    fits = True
    for resource, capacity in (
        ("alms", spec.device.alms),
        ("registers", spec.device.registers),
        ("dsp_blocks", spec.device.dsp_blocks),
        ("m20k_blocks", spec.device.m20k_blocks),
    ):
        used = getattr(per_device, resource)
        if used > capacity:
            fits = False
            notes.append(
                f"{resource}: need {used:.0f} > {capacity} available"
            )
    return DeploymentReport(
        spec=spec, stages=tuple(stages), fits=fits, fit_notes=tuple(notes)
    )
