"""The baseline radix-64 scheme of Wang & Huang [28] (paper Fig. 3).

Sixty-four independent computing chains, one per frequency component:
each chain shifts the eight samples of the current column by its own
twiddle exponents, sums them in a carry-save adder tree, accumulates
over eight cycles, and owns a private modular reductor.  Outputs appear
64-at-once, requiring 64-word memory parallelism.

The functional path is the direct Eq. 3 evaluation — identical values
to the optimized unit (that is the point: the proposed unit is a
cheaper implementation of the same transform).  The cost census is the
all-flags-off configuration of :class:`repro.hw.fft64_unit.FFT64Config`
plus the wider writeback interface, and is used as the per-unit
building block of the [28] system model in :mod:`repro.hw.reports`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.hw import resources as rc
from repro.hw.fft64_unit import FFT64Config, FFT64Unit
from repro.ntt.radix64 import ntt_shift_radix

#: The baseline writes all 64 reduced outputs in one burst.
BASELINE_MEMORY_WORDS = 64


@dataclass
class BaselineFFT64Unit:
    """Functional/cycle/cost model of the Fig. 3 baseline unit."""

    name: str = "fft64_baseline"
    busy_cycles: int = 0
    transforms: int = 0
    radix_counts: Dict[int, int] = field(default_factory=dict)

    @staticmethod
    def initiation_interval(radix: int) -> int:
        """Same eight-cycle accumulation rhythm as the proposed unit.

        The baseline also consumes samples 8-by-8 ("input samples are
        read 8-by-8"), so a 64-point transform still takes eight
        cycles; the difference is cost, not throughput, per unit.
        """
        return FFT64Unit.initiation_interval(radix)

    def transform(self, values: Sequence[int], radix: int = 64) -> List[int]:
        """Direct shift-radix evaluation (64 independent chains)."""
        if len(values) != radix:
            raise ValueError(f"expected {radix} samples")
        self.busy_cycles += self.initiation_interval(radix)
        self.transforms += 1
        self.radix_counts[radix] = self.radix_counts.get(radix, 0) + 1
        return ntt_shift_radix(list(values), radix)

    def resources(self) -> rc.ResourceEstimate:
        """Census of the un-optimized unit plus its 64-word writeback.

        The chain datapath census comes from the all-flags-off
        :class:`FFT64Config`; on top of it the baseline needs the
        64-word write interface (output registers and routing muxes
        toward the memory banks) that the proposed unit's 8-word
        interface avoids.
        """
        chains = FFT64Unit(config=FFT64Config.baseline()).resources()
        writeback = (
            rc.registers(64, BASELINE_MEMORY_WORDS)
            + rc.mux(64, 8).scale(BASELINE_MEMORY_WORDS)
        )
        return chains + rc.with_overhead(writeback)
