"""Structural resource estimation: ALMs, registers, DSP blocks, M20K.

The census that regenerates Table I.  Costs are built bottom-up from a
small set of *unit cost* primitives (an adder bit, a 3:2 carry-save
compressor bit, a mux leg, a barrel-shifter level...), with Stratix-V
calibration constants documented next to each primitive.  The point of
the model is that the **relative** saving between the proposed and the
baseline FFT-64 units emerges structurally — 64 → 8 modular reductors,
8 → 4 first-stage chains, 8 → 4 twiddle shifts, 64 → 8 memory words —
while the absolute scale is anchored by the unit costs.

Unit-cost rationale (Stratix V ALM = dual 6-LUT + 2 full adders + 4 FFs):

- ripple/carry adder: ~0.5 ALM per bit (two adder bits per ALM);
- 3:2 compressor (carry-save adder): ~0.5 ALM per bit;
- 2:1 mux: ~0.5 ALM per bit; wider muxes scale with ceil(log2(ways));
- barrel shifter: one 4:1 mux level per two select bits;
- routing/control overhead: a fixed fraction added at component level.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple


@dataclass(frozen=True)
class ResourceEstimate:
    """A bundle of FPGA resources; supports + and integer scaling."""

    alms: float = 0.0
    registers: float = 0.0
    dsp_blocks: float = 0.0
    m20k_bits: float = 0.0
    m20k_blocks: float = 0.0

    def __add__(self, other: "ResourceEstimate") -> "ResourceEstimate":
        return ResourceEstimate(
            alms=self.alms + other.alms,
            registers=self.registers + other.registers,
            dsp_blocks=self.dsp_blocks + other.dsp_blocks,
            m20k_bits=self.m20k_bits + other.m20k_bits,
            m20k_blocks=self.m20k_blocks + other.m20k_blocks,
        )

    def scale(self, factor: float) -> "ResourceEstimate":
        return ResourceEstimate(
            alms=self.alms * factor,
            registers=self.registers * factor,
            dsp_blocks=self.dsp_blocks * factor,
            m20k_bits=self.m20k_bits * factor,
            m20k_blocks=self.m20k_blocks * factor,
        )

    def rounded(self) -> "ResourceEstimate":
        return ResourceEstimate(
            alms=round(self.alms),
            registers=round(self.registers),
            dsp_blocks=round(self.dsp_blocks),
            m20k_bits=round(self.m20k_bits),
            m20k_blocks=round(self.m20k_blocks),
        )


ZERO = ResourceEstimate()

# --- unit-cost primitives ---------------------------------------------------

#: ALMs per adder output bit (two full-adder bits fit in one ALM).
ALM_PER_ADDER_BIT = 0.5
#: ALMs per carry-save 3:2 compressor bit (shared-arithmetic mode packs
#: roughly three compressor bits into one ALM pair).
ALM_PER_CSA_BIT = 0.33
#: ALMs per 4:1 mux level per bit (one 6-LUT implements a 4:1 mux).
ALM_PER_MUX4_BIT = 0.5
#: Fractional ALM overhead for control/routing around a datapath block.
CONTROL_OVERHEAD = 0.10


def adder(width: int) -> ResourceEstimate:
    """A two-input carry-propagate adder/subtractor."""
    return ResourceEstimate(alms=width * ALM_PER_ADDER_BIT)


def csa(width: int) -> ResourceEstimate:
    """One 3:2 carry-save compressor row."""
    return ResourceEstimate(alms=width * ALM_PER_CSA_BIT)


def csa_tree(inputs: int, width: int) -> ResourceEstimate:
    """Carry-save tree compressing ``inputs`` operands to a sum/carry pair.

    A Wallace-style tree needs ``inputs - 2`` compressor rows.
    """
    if inputs < 3:
        return ZERO
    return csa(width).scale(inputs - 2)


def mux(width: int, ways: int) -> ResourceEstimate:
    """A ``ways``:1 multiplexer, ``width`` bits wide (4:1 LUT levels)."""
    if ways <= 1:
        return ZERO
    levels = math.ceil(math.log2(ways) / 2)
    return ResourceEstimate(alms=width * ALM_PER_MUX4_BIT * levels)


def registers(width: int, count: int = 1) -> ResourceEstimate:
    """Plain pipeline/state flip-flops."""
    return ResourceEstimate(registers=width * count)


def barrel_shifter(width: int, positions: int) -> ResourceEstimate:
    """A shifter selecting among ``positions`` fixed shift amounts.

    Implemented as a mux tree over pre-wired shifted copies — shifts of
    a constant amount are free in FPGA routing, the cost is selection.
    """
    return mux(width, positions)


def with_overhead(estimate: ResourceEstimate) -> ResourceEstimate:
    """Add the component-level control/routing overhead to ALMs."""
    return ResourceEstimate(
        alms=estimate.alms * (1.0 + CONTROL_OVERHEAD),
        registers=estimate.registers,
        dsp_blocks=estimate.dsp_blocks,
        m20k_bits=estimate.m20k_bits,
        m20k_blocks=estimate.m20k_blocks,
    )


# --- reporting ---------------------------------------------------------------


@dataclass
class ResourceReport:
    """Named per-component resource breakdown with a grand total."""

    title: str
    entries: List[Tuple[str, ResourceEstimate]] = field(default_factory=list)

    def add(self, name: str, estimate: ResourceEstimate) -> None:
        self.entries.append((name, estimate))

    @property
    def total(self) -> ResourceEstimate:
        total = ZERO
        for _, estimate in self.entries:
            total = total + estimate
        return total

    def render(self, device=None) -> str:
        """Human-readable table; with a device, adds utilization rows."""
        lines = [self.title, "-" * len(self.title)]
        header = (
            f"{'component':<34}{'ALMs':>10}{'regs':>10}"
            f"{'DSP':>7}{'M20K bits':>12}"
        )
        lines.append(header)
        for name, est in self.entries:
            lines.append(
                f"{name:<34}{est.alms:>10.0f}{est.registers:>10.0f}"
                f"{est.dsp_blocks:>7.0f}{est.m20k_bits:>12.0f}"
            )
        total = self.total
        lines.append(
            f"{'TOTAL':<34}{total.alms:>10.0f}{total.registers:>10.0f}"
            f"{total.dsp_blocks:>7.0f}{total.m20k_bits:>12.0f}"
        )
        if device is not None:
            util = device.utilization(total)
            lines.append(
                f"{'% of ' + device.name:<34}"
                f"{util['alms']:>9.0%} {util['registers']:>9.0%}"
                f"{util['dsp_blocks']:>6.0%} {util['m20k_bits']:>11.0%}"
            )
        return "\n".join(lines)
