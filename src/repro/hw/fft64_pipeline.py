"""Clocked (cycle-by-cycle) model of the FFT-64 unit pipeline.

Where :class:`repro.hw.fft64_unit.FFT64Unit` is transaction-level (one
call per transform, cycles accounted analytically), this model runs on
the :mod:`repro.sim` kernel one clock at a time and demonstrates the
paper's microarchitectural claims *by execution*:

- one column of eight samples enters per cycle;
- stage 1 (shared chains + even/odd derivation), the mid twiddle and
  the accumulator update are distinct pipeline stages;
- after the eighth column the accumulator bank is snapshotted to the
  reduction engine, so the next block streams in immediately —
  sustained throughput of one 64-point transform per 8 cycles;
- the eight shared modular reductors emit one 8-component beat per
  cycle, in the 8-spaced order the data route relies on;
- first-output latency equals
  :data:`repro.hw.fft64_unit.PIPELINE_LATENCY`.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.field.reduction import reduce_128
from repro.field.solinas import P, add, sub, mul_by_pow2
from repro.hw.fft64_unit import PIPELINE_LATENCY
from repro.ntt.radix64 import (
    accumulator_twiddle,
    stage1_mid_twiddle,
    stage1_partial_sums,
)
from repro.sim.kernel import Component, Fifo


class FFT64Pipeline(Component):
    """Column-per-cycle FFT-64 pipeline.

    Feed columns with :meth:`push_column` (column ``j`` of block ``b``
    must arrive in order); reduced output beats appear on
    :attr:`output`, one per cycle, each carrying the eight components
    ``{8·k2 + t}`` of one block.
    """

    #: Cycles the reduction tail (normalize + addmod pipeline) adds
    #: after an accumulator snapshot before its first beat emerges.
    REDUCTION_LATENCY = 3

    def __init__(self, name: str = "fft64_pipeline", parent=None):
        super().__init__(name, parent)
        self.input: Fifo = Fifo(f"{name}.in")
        self.output: Fifo = Fifo(f"{name}.out")
        # Pipeline registers between stages (single-entry).
        self._stage1_reg: Optional[Tuple[int, Dict[int, int]]] = None
        self._twiddle_reg: Optional[Tuple[int, Dict[int, int]]] = None
        # Accumulator bank: [k2][k1].
        self._accumulators: List[List[int]] = [[0] * 8 for _ in range(8)]
        self._columns_accumulated = 0
        # Snapshots queued for reduction.
        self._reduction_queue: Deque[List[List[int]]] = deque()
        self._reduction_step = 0
        # Normalize/AddMod pipeline fill; refills only after idling, so
        # back-to-back blocks keep the 8-cycle cadence.
        self._reduction_fill = self.REDUCTION_LATENCY
        self._fed_columns = 0
        self.blocks_started = 0
        self.blocks_finished = 0

    def push_column(self, column: List[int]) -> None:
        """Queue one column (eight samples) for the next cycles."""
        if len(column) != 8:
            raise ValueError("a column holds exactly eight samples")
        self.input.push([v % P for v in column])

    # -- clocked behaviour ---------------------------------------------

    def tick(self, cycle: int) -> None:
        self._tick_reduction()
        self._tick_accumulate()
        self._tick_mid_twiddle()
        self._tick_stage1()
        self.input.commit()

    def _tick_stage1(self) -> None:
        if self._stage1_reg is not None or not self.input.can_pop():
            return
        column = self.input.pop()
        j = self._fed_columns % 8
        self._fed_columns += 1
        self._stage1_reg = (j, stage1_partial_sums(column))

    def _tick_mid_twiddle(self) -> None:
        if self._twiddle_reg is not None or self._stage1_reg is None:
            return
        j, partials = self._stage1_reg
        self._stage1_reg = None
        self._twiddle_reg = (j, stage1_mid_twiddle(partials, j))

    def _tick_accumulate(self) -> None:
        if self._twiddle_reg is None:
            return
        j, twiddled = self._twiddle_reg
        self._twiddle_reg = None
        if self._columns_accumulated == 0:
            self.blocks_started += 1
        for k2 in range(8):
            shift, subtract = accumulator_twiddle(j, k2)
            for k1 in range(8):
                term = mul_by_pow2(twiddled[k1], shift)
                if subtract:
                    self._accumulators[k2][k1] = sub(
                        self._accumulators[k2][k1], term
                    )
                else:
                    self._accumulators[k2][k1] = add(
                        self._accumulators[k2][k1], term
                    )
        self._columns_accumulated += 1
        if self._columns_accumulated == 8:
            snapshot = [list(block) for block in self._accumulators]
            self._reduction_queue.append(snapshot)
            self._accumulators = [[0] * 8 for _ in range(8)]
            self._columns_accumulated = 0

    def _tick_reduction(self) -> None:
        if not self._reduction_queue:
            self._reduction_fill = self.REDUCTION_LATENCY
            return
        if self._reduction_fill > 0:
            self._reduction_fill -= 1
            return
        snapshot = self._reduction_queue[0]
        t = self._reduction_step
        beat = [reduce_128(snapshot[k2][t] % P) for k2 in range(8)]
        self.output.push((t, beat))
        self.output.commit()
        self._reduction_step += 1
        if self._reduction_step == 8:
            self._reduction_queue.popleft()
            self._reduction_step = 0
            self.blocks_finished += 1

    # -- convenience ------------------------------------------------------

    def drain_block(self) -> List[int]:
        """Pop eight beats and reassemble one block's 64 outputs."""
        out = [0] * 64
        for _ in range(8):
            t, beat = self.output.pop()
            for k2, value in enumerate(beat):
                out[8 * k2 + t] = value
        return out
