"""Data route: memory address generation for FFT reads and writes.

Paper Section IV-e: "the complexity of this component is greatly
reduced since part of its job is performed by the FFT-64 unit.  In
fact, it is just a memory address generator."  The shared-reductor
ordering makes the unit emit, each cycle, one output per accumulator
block — eight values spaced eight positions apart — so the route only
computes base addresses and strides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.hw import resources as rc


@dataclass(frozen=True)
class BeatPattern:
    """One beat: the eight point indices accessed in a cycle."""

    indices: List[int]


def column_read_beats(block_base: int, radix: int = 64) -> Iterator[BeatPattern]:
    """Read beats feeding one sub-transform (column order).

    Column ``j`` of a radix-64 block is ``{base+j, base+j+8, ...}`` —
    the 8-spaced shape the skewed banking serves conflict-free.
    """
    columns = max(1, radix // 8)
    for j in range(columns):
        yield BeatPattern(
            indices=[block_base + columns * i + j for i in range(8)]
        )


def reductor_write_beats(block_base: int, radix: int = 64) -> Iterator[BeatPattern]:
    """Write beats emitted by the shared reductors for one block.

    At output cycle ``t`` the eight reductors deliver components
    ``{8·k2 + t : k2 = 0..7}`` — again 8-spaced.
    """
    cycles = max(1, radix // 8)
    stride = max(1, radix // 8)
    for t in range(cycles):
        yield BeatPattern(
            indices=[block_base + stride * k2 + t for k2 in range(8)]
        )


@dataclass
class DataRoute:
    """Cost/activity model of the address generator."""

    name: str = "data_route"
    beats_generated: int = 0

    def generate(self, pattern: Iterator[BeatPattern]) -> List[BeatPattern]:
        beats = list(pattern)
        self.beats_generated += len(beats)
        return beats

    def resources(self) -> rc.ResourceEstimate:
        """Counters, a stride adder per lane, and a small control FSM."""
        lane_adders = rc.adder(14).scale(8)
        control = rc.adder(14) + rc.mux(14, 4) + rc.registers(14, 4)
        return rc.with_overhead(lane_adders + control)
