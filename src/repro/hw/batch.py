"""Batch-pipelined multiplication — the paper's spare-resource headroom.

Section V: "The unused resources might be used to achieve further
performance improvements, although this was not exploited in this
comparison."  This module exploits it: when many independent products
are queued (the realistic FHE server case — thousands of ciphertext
gates), the three hardware resources

- the FFT engine (the PEs),
- the dot-product multiplier bank,
- the carry-recovery adder

form a three-stage macro-pipeline.  While multiply ``i`` sits in its
dot-product/carry phases, the FFT engine already transforms the
operands of multiply ``i+1``.  Steady-state throughput is then bound by
the FFT engine alone (3 transforms per product) instead of the full
serial latency — a ~1.33× throughput gain at the paper's operating
point, for free.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.hw.timing import AcceleratorTiming, PAPER_TIMING


@dataclass(frozen=True)
class BatchSchedule:
    """Cycle schedule of one batch of independent multiplications."""

    count: int
    clock_ns: float
    #: Per-multiply (fft_start, dot_start, carry_start, finish) cycles.
    spans: Tuple[Tuple[int, int, int, int], ...]
    serial_cycles: int

    @property
    def total_cycles(self) -> int:
        return self.spans[-1][3] if self.spans else 0

    @property
    def total_time_us(self) -> float:
        return self.total_cycles * self.clock_ns / 1000.0

    @property
    def throughput_speedup(self) -> float:
        """Batch speedup over running the multiplies back-to-back."""
        if not self.spans:
            return 1.0
        return self.serial_cycles / self.total_cycles

    @property
    def steady_state_interval(self) -> int:
        """Cycles between consecutive completions once the pipe fills."""
        if len(self.spans) < 2:
            return self.total_cycles
        return self.spans[-1][3] - self.spans[-2][3]

    def render(self) -> str:
        lines = [
            f"batch of {self.count} multiplications: "
            f"{self.total_time_us:.1f} us total, "
            f"{self.throughput_speedup:.2f}x over serial",
            f"steady-state: one product per "
            f"{self.steady_state_interval} cycles "
            f"({self.steady_state_interval * self.clock_ns / 1000:.2f} us)",
        ]
        for i, (f0, d0, c0, end) in enumerate(self.spans[:4]):
            lines.append(
                f"  mult {i}: fft@{f0} dot@{d0} carry@{c0} done@{end}"
            )
        if len(self.spans) > 4:
            lines.append(f"  ... ({len(self.spans) - 4} more)")
        return "\n".join(lines)


def schedule_batch(
    count: int, timing: AcceleratorTiming = PAPER_TIMING
) -> BatchSchedule:
    """Greedy list schedule of ``count`` products on the three resources.

    Each resource serves one multiply at a time, in order; a stage
    starts when both its predecessor stage (same multiply) and its
    resource (previous multiply) are free.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    fft_cycles = 3 * timing.fft_cycles()
    dot_cycles = timing.dot_product_cycles()
    carry_cycles = timing.carry_recovery_cycles()
    serial_per_mult = fft_cycles + dot_cycles + carry_cycles

    spans: List[Tuple[int, int, int, int]] = []
    fft_free = dot_free = carry_free = 0
    for _ in range(count):
        fft_start = fft_free
        fft_done = fft_start + fft_cycles
        fft_free = fft_done
        dot_start = max(fft_done, dot_free)
        dot_done = dot_start + dot_cycles
        dot_free = dot_done
        carry_start = max(dot_done, carry_free)
        finish = carry_start + carry_cycles
        carry_free = finish
        spans.append((fft_start, dot_start, carry_start, finish))
    return BatchSchedule(
        count=count,
        clock_ns=timing.clock_ns,
        spans=tuple(spans),
        serial_cycles=serial_per_mult * count,
    )


@dataclass(frozen=True)
class ThroughputComparison:
    """Modeled (hardware macro-pipeline) vs measured (software batched
    executor) throughput gain for one batch of independent products."""

    bits: int
    count: int
    modeled_speedup: float
    serial_seconds: float
    batched_seconds: float

    @property
    def measured_speedup(self) -> float:
        if self.batched_seconds <= 0:
            return float("inf")
        return self.serial_seconds / self.batched_seconds

    @property
    def serial_ops_per_sec(self) -> float:
        if self.serial_seconds <= 0:
            return float("inf")
        return self.count / self.serial_seconds

    @property
    def batched_ops_per_sec(self) -> float:
        if self.batched_seconds <= 0:
            return float("inf")
        return self.count / self.batched_seconds

    @property
    def meets_model(self) -> bool:
        """The software batch path realizes at least the ~1.33× gain the
        hardware macro-pipeline model predicts for the same batch."""
        return self.measured_speedup >= self.modeled_speedup

    def render(self) -> str:
        mark = "OK" if self.meets_model else "BELOW MODEL"
        return "\n".join(
            [
                f"batched software throughput, {self.count} x "
                f"{self.bits}-bit products:",
                f"  looped  : {self.serial_seconds * 1e3:9.1f} ms "
                f"({self.serial_ops_per_sec:8.1f} ops/s)",
                f"  batched : {self.batched_seconds * 1e3:9.1f} ms "
                f"({self.batched_ops_per_sec:8.1f} ops/s)",
                f"  measured speedup {self.measured_speedup:.2f}x vs "
                f"modeled macro-pipeline {self.modeled_speedup:.2f}x "
                f"[{mark}]",
            ]
        )


def measure_software_batch(
    bits: int = 4096,
    count: int = 32,
    seed: int = 0,
    timing: AcceleratorTiming = PAPER_TIMING,
    engine=None,
) -> ThroughputComparison:
    """Time looped vs batched SSA multiplication on ``count`` products.

    Cross-checks the Section V batch model against the software stack:
    every product is verified bit-exact against Python big-int
    multiplication and looped ``multiply`` before the timing is
    reported, and the modeled speedup comes from
    :func:`schedule_batch` on the same batch size.

    ``engine`` (an optional :class:`repro.engine.Engine`) routes both
    paths through the engine — its kernel, its plan cache *and its
    compute backend*, so an engine on ``software-mp`` measures the
    sharded worker-pool path (and exercises its fault recovery when
    the injection harness is armed); by default a standalone
    :class:`SSAMultiplier` is sized for ``bits``.
    """
    from repro.ssa.multiplier import SSAMultiplier

    if count < 1:
        raise ValueError("count must be positive")
    rng = random.Random(seed)
    if engine is not None:
        from repro.engine.core import EngineMultiplier

        multiplier = EngineMultiplier(engine)
    else:
        multiplier = SSAMultiplier.for_bits(bits)
    pairs = [
        (rng.getrandbits(bits), rng.getrandbits(bits)) for _ in range(count)
    ]
    multiplier.multiply(*pairs[0])  # warm the plan cache
    if engine is not None:
        # Warm the backend too (software-mp: process spawn + per-worker
        # engine builds stay out of the timed region).  Two items cross
        # the sharding threshold.
        multiplier.multiply_many(pairs[:2])

    start = time.perf_counter()
    looped = [multiplier.multiply(a, b) for a, b in pairs]
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batched = multiplier.multiply_many(pairs)
    batched_seconds = time.perf_counter() - start

    if batched != looped or batched != [a * b for a, b in pairs]:
        raise AssertionError("batched products disagree with looped/big-int")
    return ThroughputComparison(
        bits=bits,
        count=count,
        modeled_speedup=schedule_batch(count, timing).throughput_speedup,
        serial_seconds=serial_seconds,
        batched_seconds=batched_seconds,
    )
