"""The optimized FFT-64 unit (paper Fig. 4 and Section IV-b).

Computes shift-only radix-64/32/16/8 sub-transforms at a throughput of
eight output points per clock cycle: one 64-point transform every eight
cycles, one 16-point transform every two cycles (the figures behind the
``T_FFT`` formula of Section V).

The unit is modeled three ways at once:

- **functional**: :meth:`FFT64Unit.transform` computes bit-exact values
  through the Eq. 5 two-stage dataflow (column feeds, first-stage
  chains with the ``k+4`` even/odd reuse, four-way accumulator twiddle
  shifts with subtract flags, eight shared modular reductors);
- **cycles**: every call advances the busy-cycle ledger by the
  initiation interval (``radix / 8``); the pipeline latency is exposed
  for the PE model;
- **cost**: :meth:`FFT64Unit.resources` performs the structural census
  controlled by :class:`FFT64Config`, whose flags correspond one-to-one
  to the optimizations itemized in Section IV-b.  Clearing all flags
  yields the baseline scheme of Fig. 3 (see
  :mod:`repro.hw.fft64_baseline`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.field.solinas import ORDER_OF_TWO, add, mul_by_pow2, sub
from repro.hw import resources as rc
from repro.hw.adder_tree import AdderTree
from repro.ntt.radix64 import (
    SHIFT_RADICES,
    accumulator_twiddle,
    ntt_shift_radix,
    shift_root_exponent,
    stage1_mid_twiddle,
    stage1_partial_sums,
)

#: Output points produced per clock cycle (eight shared reductors).
POINTS_PER_CYCLE = 8

#: Pipeline latency from first column in to first point out: input
#: normalize, stage-1 tree + merge, mid twiddle, eight accumulation
#: steps, normalize, addmod.
PIPELINE_LATENCY = 13


@dataclass(frozen=True)
class FFT64Config:
    """Feature flags matching the Section IV-b optimizations.

    All flags on = the proposed unit; all off = the Fig. 3 baseline.

    Attributes
    ----------
    shared_first_stage:
        Factorize per Eq. 5 — eight shared first-stage chains feeding
        all 64 components instead of 64 independent chains.
    halved_chains:
        Derive chains ``k+4`` from the even/odd split of chains ``k``
        (only meaningful with ``shared_first_stage``).
    reduced_twiddle_shifts:
        Wire only shifts {0, 24, 48, 72} into the accumulator blocks
        and use a subtract flag for the other half.
    merged_carry_save:
        Merge carry-save vectors right after the adder tree (plus one
        pipeline stage) instead of propagating CS pairs.
    shared_reductors:
        Eight time-multiplexed modular reductors instead of 64.
    input_normalize:
        Apply Eq. 4 to inputs before stage 1 to trim datapath width.
    """

    shared_first_stage: bool = True
    halved_chains: bool = True
    reduced_twiddle_shifts: bool = True
    merged_carry_save: bool = True
    shared_reductors: bool = True
    input_normalize: bool = True

    @staticmethod
    def proposed() -> "FFT64Config":
        return FFT64Config()

    @staticmethod
    def baseline() -> "FFT64Config":
        return FFT64Config(
            shared_first_stage=False,
            halved_chains=False,
            reduced_twiddle_shifts=False,
            merged_carry_save=False,
            shared_reductors=False,
            input_normalize=False,
        )


@dataclass
class FFT64Unit:
    """Functional/cycle/cost model of the radix-64/16 FFT unit."""

    name: str = "fft64"
    config: FFT64Config = field(default_factory=FFT64Config)
    busy_cycles: int = 0
    transforms: int = 0
    #: Histogram of transform radices executed (for reports).
    radix_counts: Dict[int, int] = field(default_factory=dict)

    # -- timing ---------------------------------------------------------

    @staticmethod
    def initiation_interval(radix: int) -> int:
        """Cycles between back-to-back transforms of this radix.

        ``radix / 8`` — eight points enter and eight leave per cycle:
        8 cycles for a 64-point FFT, 2 for a 16-point FFT (Section V).
        """
        if radix not in SHIFT_RADICES:
            raise ValueError(f"unsupported radix {radix}")
        return max(1, radix // POINTS_PER_CYCLE)

    # -- functional -----------------------------------------------------

    def transform(self, values: Sequence[int], radix: int = 64) -> List[int]:
        """Run one shift-only transform through the unit.

        Radix-64 goes through the full Eq. 5 two-stage dataflow; the
        smaller radices use the same chains with the later columns
        idle, functionally equal to the direct shift-radix transform.
        """
        if len(values) != radix:
            raise ValueError(f"expected {radix} samples")
        self.busy_cycles += self.initiation_interval(radix)
        self.transforms += 1
        self.radix_counts[radix] = self.radix_counts.get(radix, 0) + 1
        if radix == 64:
            return self._transform64(values)
        return self._transform_small(values, radix)

    def _transform64(self, values: Sequence[int]) -> List[int]:
        """Eq. 5 dataflow: eight column steps into 8×8 accumulators."""
        accumulators = [[0] * 8 for _ in range(8)]  # [block k2][chain k1]
        for j in range(8):
            column = [values[8 * i + j] for i in range(8)]
            partials = stage1_partial_sums(column)
            if not self.config.halved_chains:
                # Un-optimized: recompute chains 4..7 directly (same
                # values; the flag only changes the cost census).
                base = shift_root_exponent(8)
                for k1 in range(4, 8):
                    acc = 0
                    for i, sample in enumerate(column):
                        acc = add(
                            acc,
                            mul_by_pow2(
                                sample, (base * i * k1) % ORDER_OF_TWO
                            ),
                        )
                    partials[k1] = acc
            twiddled = stage1_mid_twiddle(partials, j)
            for k2 in range(8):
                shift, subtract = accumulator_twiddle(j, k2)
                for k1 in range(8):
                    term = mul_by_pow2(twiddled[k1], shift)
                    if subtract and self.config.reduced_twiddle_shifts:
                        accumulators[k2][k1] = sub(accumulators[k2][k1], term)
                    elif subtract:
                        # Full 8-way shifter: apply 2**96 ≡ -1 as the
                        # wired shift instead of the subtract flag.
                        accumulators[k2][k1] = add(
                            accumulators[k2][k1], mul_by_pow2(term, 96)
                        )
                    else:
                        accumulators[k2][k1] = add(accumulators[k2][k1], term)
        out = [0] * 64
        for k2 in range(8):
            for k1 in range(8):
                out[8 * k2 + k1] = accumulators[k2][k1]
        return out

    def _transform_small(self, values: Sequence[int], radix: int) -> List[int]:
        """Radix-8/16/32 on the shared two-stage structure.

        "The FFT-64 unit can be adapted, with minor modifications, to
        compute also Radix-8, Radix-16, and Radix-32 FFTs" (Section
        IV-b).  With ``C = radix/8`` columns and sample index
        ``m = C·i + j``::

            A[8·k2 + k1] = Σ_j ω_R^{j·k1} · ω_R^{8·j·k2}
                               · Σ_i a_{C·i+j} · ω8^{i·k1}

        — the inner sum is exactly the existing stage-1 chains, the
        ``ω_R^{j·k1}`` factor rides the mid-twiddle shifters
        (``ω_R = 2^{192/R}``), and ``ω_R^{8·j·k2}`` lands on the
        accumulator-block shift network (a power of two again; for
        radix 16 it degenerates to the ±1 subtract flag).  Only ``C``
        accumulator blocks are active.
        """
        columns = radix // POINTS_PER_CYCLE
        base_shift = ORDER_OF_TWO // radix
        accumulators = [[0] * 8 for _ in range(max(1, columns))]
        for j in range(max(1, columns)):
            column = [values[columns * i + j] for i in range(8)]
            partials = stage1_partial_sums(column)
            for k1 in range(8):
                mid = mul_by_pow2(
                    partials[k1], (base_shift * j * k1) % ORDER_OF_TWO
                )
                for k2 in range(max(1, columns)):
                    block_shift = (
                        POINTS_PER_CYCLE * base_shift * j * k2
                    ) % ORDER_OF_TWO
                    accumulators[k2][k1] = add(
                        accumulators[k2][k1], mul_by_pow2(mid, block_shift)
                    )
        out = [0] * radix
        for k2 in range(max(1, columns)):
            for k1 in range(8):
                out[8 * k2 + k1] = accumulators[k2][k1]
        return out

    # -- cost -----------------------------------------------------------

    def resources(self) -> rc.ResourceEstimate:
        """Structural census of the unit under its config flags."""
        cfg = self.config
        input_width = 66 if cfg.input_normalize else 128
        tree_width = input_width + 95  # max wired shift below 2**96
        acc_width = 192

        total = rc.ZERO

        if cfg.input_normalize:
            # Eight Eq. 4 normalizers on the column feed.
            normalize = rc.adder(33) + rc.adder(34) + rc.adder(66)
            total = total + rc.with_overhead(normalize).scale(8)

        if cfg.shared_first_stage:
            # Eq. 5: the first-stage shifts 2**(24·i·k1) do not depend
            # on the column index j, so each lane's shifter is fixed
            # wiring — the structural saving over the baseline, whose
            # per-chain shifts 8**(i·8+j)·k vary cycle by cycle.
            chains = 4 if cfg.halved_chains else 8
            tree = AdderTree(
                name="tree",
                width=tree_width,
                dual_output=cfg.halved_chains,
                merge_carry_save=cfg.merged_carry_save,
            )
            total = total + tree.resources().scale(chains)
            # Mid twiddle ω64^{j·k1} (and ω16^j for the derived
            # chains): per-chain selectable shift over 8 positions.
            total = total + rc.barrel_shifter(tree_width, 8).scale(8)
            # Pipeline registers between stage 1 and the accumulators.
            total = total + rc.registers(tree_width, 8)
        else:
            # 64 independent chains: every lane needs a live barrel
            # shifter (the twiddle exponent changes with the column),
            # its own 8-input tree, and pipeline registers.
            tree = AdderTree(
                name="tree",
                width=tree_width,
                dual_output=False,
                merge_carry_save=cfg.merged_carry_save,
            )
            lane_shifters = rc.barrel_shifter(tree_width, 8).scale(8)
            lane_regs = rc.registers(tree_width, 8)
            total = total + (tree.resources() + lane_shifters + lane_regs).scale(64)

        # 64 accumulators in 8 blocks.  With the merged-carry-save
        # optimization the tree hands over a single vector; the baseline
        # accumulates (sum, carry) pairs — twice the compressor rows and
        # twice the state.
        if cfg.merged_carry_save:
            accumulator = rc.csa(acc_width) + rc.registers(acc_width, 2)
        else:
            accumulator = rc.csa(acc_width).scale(2) + rc.registers(
                acc_width, 4
            )
        total = total + accumulator.scale(64)
        shift_ways = 4 if cfg.reduced_twiddle_shifts else 8
        per_block_mux = rc.mux(acc_width, shift_ways)
        total = total + per_block_mux.scale(8)

        # Modular reductors: merge CS accumulator, Eq. 4 normalize,
        # AddMod; shared ones add the 8:1 input mux.
        reductor = (
            rc.adder(acc_width)
            + rc.adder(33)
            + rc.adder(34)
            + rc.adder(66)
            + rc.adder(65)
            + rc.mux(64, 3)
            + rc.registers(66, 2)
        )
        if cfg.shared_reductors:
            reductor = reductor + rc.mux(acc_width, 8)
            total = total + reductor.scale(8)
        else:
            total = total + reductor.scale(64)

        return rc.with_overhead(total)
