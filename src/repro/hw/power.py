"""Power and energy model — the efficiency argument behind the paper.

The paper's related-work discussion leans on [28]'s conclusion that
"the FPGA version is at least twice as fast as the GPU one, with lower
power consumption".  This module makes that argument quantitative for
our reproduced design: a resource-based dynamic-power estimate in the
style of vendor early-power-estimator spreadsheets, plus an
energy-per-multiplication comparison against the published GPU/ASIC
baselines of Table II.

Coefficients are typical Stratix V 28-nm figures (per-resource dynamic
power at 200 MHz and the stated toggle activity) — documented
calibration constants, like the unit costs of the resource census.
The *comparative* claim (orders of magnitude in energy per product vs
a 238 W GPU) is insensitive to them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.hw.reports import proposed_fft_census
from repro.hw.resources import ResourceEstimate
from repro.hw.timing import PAPER_TIMING, AcceleratorTiming

#: Dynamic power per resource at 200 MHz, 12.5% toggle rate (µW each).
UW_PER_ALM = 6.0
UW_PER_REGISTER = 1.2
UW_PER_DSP = 550.0
UW_PER_M20K_BLOCK = 220.0
#: Static power of the 5SGSMD8 fabric (W).
STATIC_WATTS = 2.9
#: I/O, PLLs, memory controllers (W).
BOARD_OVERHEAD_WATTS = 3.5

#: Published board powers the comparison uses (Watts).
PUBLISHED_POWER_W = {
    "wang_gpu[26]": 238.0,  # NVIDIA Tesla C2050 TDP
    "wang_gpu[27]": 238.0,
    "wang_vlsi_asic[30]": 0.6,  # 90 nm ASIC core, per [30]
}


@dataclass(frozen=True)
class PowerEstimate:
    """Design power broken into the usual Quartus report buckets."""

    logic_w: float
    registers_w: float
    dsp_w: float
    memory_w: float
    static_w: float
    board_w: float

    @property
    def dynamic_w(self) -> float:
        return self.logic_w + self.registers_w + self.dsp_w + self.memory_w

    @property
    def total_w(self) -> float:
        return self.dynamic_w + self.static_w + self.board_w

    def render(self) -> str:
        return (
            f"logic {self.logic_w:.2f} W + registers "
            f"{self.registers_w:.2f} W + DSP {self.dsp_w:.2f} W + "
            f"memory {self.memory_w:.2f} W + static {self.static_w:.2f} W "
            f"+ board {self.board_w:.2f} W = {self.total_w:.2f} W"
        )


def estimate_power(
    resources: Optional[ResourceEstimate] = None,
    activity: float = 1.0,
) -> PowerEstimate:
    """Dynamic + static power of a resource census.

    ``activity`` scales the dynamic component (1.0 = the design's
    nominal toggle assumption; the FFT datapath runs essentially every
    cycle during a transform).
    """
    if resources is None:
        resources = proposed_fft_census().total
    if not 0.0 <= activity <= 2.0:
        raise ValueError("activity factor out of range")
    return PowerEstimate(
        logic_w=resources.alms * UW_PER_ALM * activity / 1e6,
        registers_w=resources.registers * UW_PER_REGISTER * activity / 1e6,
        dsp_w=resources.dsp_blocks * UW_PER_DSP * activity / 1e6,
        memory_w=resources.m20k_blocks * UW_PER_M20K_BLOCK * activity / 1e6,
        static_w=STATIC_WATTS,
        board_w=BOARD_OVERHEAD_WATTS,
    )


@dataclass(frozen=True)
class EnergyRow:
    design: str
    mult_us: float
    power_w: float

    @property
    def energy_mj(self) -> float:
        """Energy per 786,432-bit multiplication, millijoules."""
        return self.mult_us * self.power_w / 1e3


def energy_comparison(
    timing: AcceleratorTiming = PAPER_TIMING,
) -> List[EnergyRow]:
    """Energy-per-multiplication of our design vs published baselines."""
    ours = estimate_power()
    rows = [
        EnergyRow(
            design="proposed",
            mult_us=timing.multiplication_time_us(),
            power_w=ours.total_w,
        )
    ]
    published_mult = {
        "wang_gpu[26]": 765.0,
        "wang_gpu[27]": 583.0,
        "wang_vlsi_asic[30]": 206.0,
    }
    for name, mult_us in published_mult.items():
        rows.append(
            EnergyRow(
                design=name,
                mult_us=mult_us,
                power_w=PUBLISHED_POWER_W[name],
            )
        )
    return rows


def render_energy_table(rows: List[EnergyRow]) -> str:
    lines = [
        f"{'design':<22}{'mult (us)':>10}{'power (W)':>11}"
        f"{'energy/mult (mJ)':>18}"
    ]
    base = rows[0].energy_mj
    for row in rows:
        ratio = row.energy_mj / base
        lines.append(
            f"{row.design:<22}{row.mult_us:>10.1f}{row.power_w:>11.1f}"
            f"{row.energy_mj:>18.3f}  ({ratio:.1f}x)"
        )
    return "\n".join(lines)
