"""Table I and Table II generators.

``table1_report`` performs the structural resource census of the
proposed accelerator (four PEs, FFT subsystem — the paper compares FFT
subsystems only, "we conservatively assumed a zero difference for the
remaining dot-product and carry recovery operations") against the [28]
baseline system model, and formats both next to the paper's printed
numbers.

``table2_report`` evaluates the timing models against the published
execution times of [28], [30], [26] and [27].
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.hw import resources as rc
from repro.hw.device import STRATIX_V_GSMD8, FpgaDevice
from repro.hw.fft64_baseline import BaselineFFT64Unit
from repro.hw.fft64_unit import FFT64Config
from repro.hw.hypercube import HypercubeTopology
from repro.hw.modmul import ModularMultiplier
from repro.hw.pe import ProcessingElement
from repro.hw.timing import (
    BASELINE_TIMING,
    PAPER_TIMING,
    PUBLISHED_RESULTS,
    AcceleratorTiming,
)

#: Paper Table I, as printed.
PAPER_TABLE1 = {
    "proposed": {
        "alms": 104_000,
        "registers": 116_000,
        "dsp_blocks": 256,
        "m20k_bits": 8 * 1024 * 1024,
    },
    "baseline[28]": {
        "alms": 231_000,
        "registers": 336_377,
        "dsp_blocks": 720,
        "m20k_bits": None,  # not reported by [28]
    },
}

#: Modular multipliers in the [28] system model.  Sized from the
#: published 720-DSP budget at eight DSP blocks per multiplier: 64 feed
#: the 64-wide writeback, the rest are inter-stage units.
BASELINE_MODMULS = 90

#: Pipeline depth of the 64-lane baseline datapath (192-bit values kept
#: in carry-save pairs end to end), inferred from the published
#: register count.
BASELINE_PIPELINE_STAGES = 4


def proposed_fft_census(pes: int = 4) -> rc.ResourceReport:
    """Census of the proposed FFT subsystem: ``pes`` full PEs."""
    report = rc.ResourceReport(title=f"proposed accelerator ({pes} PEs)")
    dimension = HypercubeTopology(pes).dimension
    points_per_pe = 65536 // pes
    pe = ProcessingElement(0, points_per_pe, FFT64Config.proposed())
    for name, estimate in pe.resource_breakdown(dimension).items():
        report.add(f"{name} x{pes}", estimate.scale(pes))
    return report


def baseline_fft_census() -> rc.ResourceReport:
    """Census of the [28] FPGA system (single shared-memory engine)."""
    report = rc.ResourceReport(title="baseline system [28]")
    unit = BaselineFFT64Unit()
    report.add("fft64_unit (64 chains)", unit.resources())
    report.add(
        f"modular multipliers x{BASELINE_MODMULS}",
        ModularMultiplier.resources().scale(BASELINE_MODMULS),
    )
    # 64K x 64-bit shared memory, double-buffered, with a 64-word-wide
    # access network instead of the PEs' 8-word banked ports.
    memory_bits = 65536 * 64 * 2
    banks = 64
    crossbar = rc.mux(64, banks).scale(64 * 2)
    addressing = rc.adder(10).scale(banks) + rc.registers(10, banks)
    report.add(
        "shared memory + 64-wide network",
        rc.ResourceEstimate(
            m20k_bits=memory_bits, m20k_blocks=memory_bits // (20 * 1024) + 1
        )
        + rc.with_overhead(crossbar + addressing),
    )
    # Deep pipelining of the 64-lane, 192-bit carry-save datapath.
    report.add(
        "datapath pipeline registers",
        rc.registers(192 * 2, 64).scale(BASELINE_PIPELINE_STAGES),
    )
    return report


@dataclass
class Table1Row:
    design: str
    alms: float
    registers: float
    dsp_blocks: float
    m20k_bits: Optional[float]


@dataclass
class Table1:
    """Computed Table I plus the paper's printed values."""

    device: FpgaDevice
    computed: List[Table1Row]
    paper: Dict[str, Dict[str, Optional[float]]]

    def row(self, design: str) -> Table1Row:
        for r in self.computed:
            if r.design == design:
                return r
        raise KeyError(design)

    def saving(self, resource: str) -> float:
        """Fractional saving of the proposed design vs the baseline."""
        proposed = getattr(self.row("proposed"), resource)
        baseline = getattr(self.row("baseline[28]"), resource)
        return 1.0 - proposed / baseline

    def render(self) -> str:
        device = self.device
        lines = [
            "TABLE I — resource usage (computed census vs paper)",
            f"device: {device.name}",
            f"{'':<26}{'ALMs':>12}{'regs':>12}{'DSP':>8}{'M20K Mbit':>11}",
        ]
        for r in self.computed:
            m20k = (
                f"{r.m20k_bits / (1024 * 1024):.1f}"
                if r.m20k_bits is not None
                else "-"
            )
            lines.append(
                f"{r.design + ' (computed)':<26}{r.alms:>12.0f}"
                f"{r.registers:>12.0f}{r.dsp_blocks:>8.0f}{m20k:>11}"
            )
            pct = (
                f"{r.alms / device.alms:>11.0%}"
                f"{r.registers / device.registers:>12.0%}"
                f"{r.dsp_blocks / device.dsp_blocks:>8.0%}"
            )
            lines.append(f"{'  % of device':<26}{pct}")
        for name, vals in self.paper.items():
            m20k = (
                f"{vals['m20k_bits'] / (1024 * 1024):.1f}"
                if vals["m20k_bits"] is not None
                else "-"
            )
            lines.append(
                f"{name + ' (paper)':<26}{vals['alms']:>12.0f}"
                f"{vals['registers']:>12.0f}{vals['dsp_blocks']:>8.0f}"
                f"{m20k:>11}"
            )
        lines.append(
            f"hardware saving (computed): ALMs {self.saving('alms'):.0%}, "
            f"registers {self.saving('registers'):.0%}, "
            f"DSP {self.saving('dsp_blocks'):.0%}"
        )
        return "\n".join(lines)


def table1_report(pes: int = 4) -> Table1:
    """Build Table I from the structural census."""
    proposed = proposed_fft_census(pes).total
    baseline = baseline_fft_census().total
    rows = [
        Table1Row(
            "proposed",
            proposed.alms,
            proposed.registers,
            proposed.dsp_blocks,
            proposed.m20k_bits,
        ),
        Table1Row(
            "baseline[28]",
            baseline.alms,
            baseline.registers,
            baseline.dsp_blocks,
            baseline.m20k_bits,
        ),
    ]
    return Table1(device=STRATIX_V_GSMD8, computed=rows, paper=PAPER_TABLE1)


@dataclass
class Table2Row:
    design: str
    fft_us: Optional[float]
    mult_us: Optional[float]
    source: str


@dataclass
class Table2:
    rows: List[Table2Row]

    def row(self, design: str) -> Table2Row:
        for r in self.rows:
            if r.design == design:
                return r
        raise KeyError(design)

    def speedup_vs(self, design: str) -> float:
        """Multiplication speedup of the proposed design over another."""
        ours = self.row("proposed").mult_us
        theirs = self.row(design).mult_us
        return theirs / ours

    def render(self) -> str:
        lines = [
            "TABLE II — execution time",
            f"{'design':<26}{'FFT (us)':>10}{'Mult (us)':>11}  source",
        ]
        for r in self.rows:
            fft = f"{r.fft_us:.1f}" if r.fft_us is not None else "-"
            mult = f"{r.mult_us:.1f}" if r.mult_us is not None else "-"
            lines.append(f"{r.design:<26}{fft:>10}{mult:>11}  {r.source}")
        lines.append(
            f"speedup vs [28]: {self.speedup_vs('wang_huang_fpga[28]'):.2f}x "
            f"(paper: 3.32x)"
        )
        return "\n".join(lines)


def table2_report(
    timing: AcceleratorTiming = PAPER_TIMING,
    baseline: AcceleratorTiming = BASELINE_TIMING,
) -> Table2:
    """Build Table II from the timing models plus published numbers."""
    rows = [
        Table2Row(
            "proposed",
            timing.fft_time_us(),
            timing.multiplication_time_us(),
            "our timing model",
        ),
        Table2Row(
            "wang_huang_fpga[28]",
            baseline.fft_time_us(),
            baseline.multiplication_time_us(),
            "our model of [28] (P=1)",
        ),
    ]
    for name, vals in PUBLISHED_RESULTS.items():
        if name == "proposed":
            continue
        rows.append(
            Table2Row(
                f"{name} (published)",
                vals["fft_us"],
                vals["mult_us"],
                "cited constant",
            )
        )
    return Table2(rows=rows)
