"""Carry-save adder tree (paper Section IV-b).

Sums eight shifted samples per chain.  "To avoid the latency of long
carry chains, a carry save solution is adopted" — the tree outputs a
(sum, carry) vector pair.  The proposed unit additionally:

- outputs the even-minus-odd difference alongside the plain sum, which
  is what lets chains ``k+4`` be derived from chains ``k`` ("such
  modification adds little complexity to the adder tree");
- merges the carry-save pair right after the tree with one pipelined
  carry-propagate adder, instead of carrying two vectors all the way to
  the accumulators as the baseline does.

The functional model keeps explicit (sum, carry) pairs so tests can
verify the carry-save invariant ``sum + carry == Σ inputs`` at every
level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.hw import resources as rc


def csa_compress(a: int, b: int, c: int) -> Tuple[int, int]:
    """One 3:2 compressor row on non-negative integers.

    Returns ``(sum, carry)`` with ``sum + carry == a + b + c``:
    bitwise XOR is the save vector, majority shifted left the carry.
    """
    s = a ^ b ^ c
    carry = ((a & b) | (a & c) | (b & c)) << 1
    return s, carry


def csa_reduce(values: Sequence[int]) -> Tuple[int, int]:
    """Compress any number of addends to a (sum, carry) pair."""
    pending: List[int] = [int(v) for v in values]
    while len(pending) > 2:
        a, b, c = pending.pop(), pending.pop(), pending.pop()
        s, carry = csa_compress(a, b, c)
        pending.extend([s, carry])
    while len(pending) < 2:
        pending.append(0)
    return pending[0], pending[1]


@dataclass
class AdderTree:
    """Eight-input carry-save tree with optional even/odd split output.

    Parameters
    ----------
    width:
        Operand width in bits (inputs already twiddled/shifted).
    dual_output:
        When true (proposed unit), also produce ``even - odd`` so the
        ``k+4`` chains come for free.
    merge_carry_save:
        When true (proposed unit), merge the CS pair into a single
        vector with a pipelined adder right after the tree.
    """

    name: str
    width: int
    dual_output: bool = True
    merge_carry_save: bool = True
    operations: int = 0

    def sums(self, inputs: Sequence[int]) -> Tuple[int, int]:
        """Return ``(sum_all, even_minus_odd)`` for eight addends.

        ``even_minus_odd`` is only meaningful when ``dual_output`` is
        set; the functional value is computed exactly (the hardware
        keeps it in carry-save form until the merge).
        """
        if len(inputs) != 8:
            raise ValueError("adder tree takes exactly eight inputs")
        self.operations += 1
        even = sum(int(v) for v in inputs[0::2])
        odd = sum(int(v) for v in inputs[1::2])
        total_s, total_c = csa_reduce(list(inputs))
        total = total_s + total_c  # merge stage (or later, if baseline)
        if total != even + odd:
            raise AssertionError("carry-save invariant violated")
        return total, even - odd

    def resources(self) -> rc.ResourceEstimate:
        """Tree compressors + optional difference and merge hardware."""
        # 8 → 2 carry-save tree: six compressor rows; widths grow by a
        # couple of bits per level — modeled at full output width.
        out_width = self.width + 3
        tree = rc.csa_tree(8, out_width)
        total = tree
        if self.dual_output:
            # Even/odd subtrees are part of the same tree; the extra
            # cost is one subtractor for even - odd.
            total = total + rc.adder(out_width)
        if self.merge_carry_save:
            # Carry-propagate merge + one pipeline register stage to
            # hide its latency (paper: "mitigated by adding a pipeline
            # stage").
            total = total + rc.adder(out_width) + rc.registers(out_width, 2)
        else:
            # Baseline: both CS vectors are registered and carried on.
            total = total + rc.registers(out_width, 2)
        return total
