"""Clocked PE-to-PE exchange over a hypercube link.

The architectural heart of the paper's distributed design: "while a
buffer is feeding current input values, the other one is filled with
new values coming partly from the same node and partly from one of its
neighbors" (Section IV).  This module executes that claim on the
simulation kernel: two :class:`ExchangeEngine` components stream halves
of their partitions to each other through registered FIFOs at the link
width (8 words/cycle) *while* a compute model keeps consuming from the
active buffer — and the tests measure that total time equals
``max(compute, transfer)``, not their sum.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.hw.hypercube import LINK_WORDS_PER_CYCLE
from repro.sim.kernel import Component, Fifo, Simulator


class ExchangeEngine(Component):
    """One endpoint of a bidirectional link exchange.

    Sends ``outgoing`` to the partner and collects the same number of
    words into ``received``; both directions move
    :data:`LINK_WORDS_PER_CYCLE` words per cycle (full-duplex link).
    """

    def __init__(
        self,
        name: str,
        outgoing: List[int],
        tx_fifo: Fifo,
        rx_fifo: Fifo,
        parent: Optional[Component] = None,
    ):
        super().__init__(name, parent)
        self.outgoing = list(outgoing)
        self.expected = len(outgoing)
        self.tx_fifo = tx_fifo
        self.rx_fifo = rx_fifo
        self.received: List[int] = []
        self._send_cursor = 0
        self.finished_at: Optional[int] = None

    @property
    def done(self) -> bool:
        return (
            self._send_cursor >= len(self.outgoing)
            and len(self.received) >= self.expected
        )

    def tick(self, cycle: int) -> None:
        # Transmit one beat.
        remaining = len(self.outgoing) - self._send_cursor
        if remaining > 0:
            beat = self.outgoing[
                self._send_cursor : self._send_cursor
                + min(LINK_WORDS_PER_CYCLE, remaining)
            ]
            self.tx_fifo.push(beat)
            self._send_cursor += len(beat)
        # Receive whatever landed.
        while self.rx_fifo.can_pop():
            self.received.extend(self.rx_fifo.pop())
        if self.done and self.finished_at is None:
            self.finished_at = cycle


class ComputeLoad(Component):
    """Stand-in for the FFT engine: busy for a fixed cycle count."""

    def __init__(self, name: str, cycles: int):
        super().__init__(name)
        self.remaining = cycles
        self.finished_at: Optional[int] = None

    @property
    def done(self) -> bool:
        return self.remaining <= 0

    def tick(self, cycle: int) -> None:
        if self.remaining > 0:
            self.remaining -= 1
            if self.remaining == 0:
                self.finished_at = cycle


def run_overlapped_exchange(
    words_a: List[int],
    words_b: List[int],
    compute_cycles: int,
    max_cycles: int = 1_000_000,
) -> Tuple[List[int], List[int], int, int, int]:
    """Simulate a pairwise exchange concurrent with compute.

    Returns ``(received_by_a, received_by_b, exchange_done_cycle,
    compute_done_cycle, total_cycles)``.
    """
    sim = Simulator()
    link_ab = sim.add_fifo(Fifo("link_ab"))
    link_ba = sim.add_fifo(Fifo("link_ba"))
    engine_a = sim.add(ExchangeEngine("pe0.link", words_a, link_ab, link_ba))
    engine_b = sim.add(ExchangeEngine("pe1.link", words_b, link_ba, link_ab))
    compute = sim.add(ComputeLoad("pe0.fft", compute_cycles))

    sim.run_until(
        lambda: engine_a.done and engine_b.done and compute.done,
        max_cycles=max_cycles,
    )
    return (
        engine_a.received,
        engine_b.received,
        max(engine_a.finished_at, engine_b.finished_at),
        compute.finished_at if compute.finished_at is not None else 0,
        sim.cycle,
    )
