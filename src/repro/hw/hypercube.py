"""Hypercube interconnect between processing elements (Section IV).

"The number of communication stages for FFT computation is the
hypercube dimension d.  In each stage, a node communicates only with
one of its d neighbors ... We must have l > d in order to correctly
interleave computation and communication."

The topology model provides neighbor/partner enumeration, the per-stage
exchange schedule of Fig. 2, and link-time accounting at the channel
width of the PE buffers (eight 64-bit words per cycle).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.hw import resources as rc

#: Words crossing one link per cycle (matches the buffer port width).
LINK_WORDS_PER_CYCLE = 8


@dataclass(frozen=True)
class ExchangeStep:
    """One communication stage: every node swaps with one neighbor."""

    dimension: int
    pairs: Tuple[Tuple[int, int], ...]


class HypercubeTopology:
    """A d-dimensional hypercube of processing elements."""

    def __init__(self, nodes: int):
        if nodes <= 0 or nodes & (nodes - 1):
            raise ValueError("node count must be a power of two")
        self.nodes = nodes

    @property
    def dimension(self) -> int:
        """d = log2(P): also the number of communication stages."""
        return self.nodes.bit_length() - 1

    def neighbors(self, node: int) -> List[int]:
        """The d neighbors of a node (one per dimension)."""
        self._check(node)
        return [node ^ (1 << bit) for bit in range(self.dimension)]

    def partner(self, node: int, dimension: int) -> int:
        """Exchange partner of ``node`` in communication stage ``dimension``."""
        self._check(node)
        if not 0 <= dimension < max(1, self.dimension):
            raise ValueError(f"dimension {dimension} out of range")
        if self.dimension == 0:
            return node
        return node ^ (1 << dimension)

    def exchange_schedule(self) -> List[ExchangeStep]:
        """The d exchange stages, each pairing every node with a neighbor."""
        steps = []
        for dim in range(self.dimension):
            pairs = tuple(
                (node, node ^ (1 << dim))
                for node in range(self.nodes)
                if node < node ^ (1 << dim)
            )
            steps.append(ExchangeStep(dimension=dim, pairs=pairs))
        return steps

    def validate_interleaving(self, compute_stages: int) -> bool:
        """Paper's schedulability condition ``l > d``.

        With ``l = d + 1`` every exchange hides behind a compute stage;
        with ``l > d + 1`` the trailing stages are compute-only.
        """
        return compute_stages > self.dimension

    @staticmethod
    def transfer_cycles(words: int) -> int:
        """Cycles to move ``words`` 64-bit words across one link."""
        return -(-words // LINK_WORDS_PER_CYCLE)

    def _check(self, node: int) -> None:
        if not 0 <= node < self.nodes:
            raise ValueError(f"node {node} outside hypercube")

    @staticmethod
    def link_resources() -> rc.ResourceEstimate:
        """One link endpoint: the exchange engine of a PE.

        Channel staging registers (8 words in each direction) plus the
        data-exchange machinery each node needs per dimension: address
        translation between local and partner index spaces, the
        send/receive DMA sequencers into the double buffers, and
        flow-control/credit logic.  The engine ALM figure is calibrated
        against the paper's system total (the distributed organization
        spends logic on movement that the shared-memory baseline does
        not have — the price of its scalability).
        """
        channel = rc.registers(64, LINK_WORDS_PER_CYCLE * 2)
        engine = rc.ResourceEstimate(alms=2_200, registers=512)
        return channel + engine
