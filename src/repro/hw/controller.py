"""Microcoded accelerator controller on the simulation kernel.

The PEs' stage sequencer (accounted as a calibrated block in the
resource census) is modeled here behaviourally: a small microcode
program walks one SSA multiplication through its phases —

    LOAD_A → FFT_A → LOAD_B → FFT_B → DOT → IFFT → CARRY → STORE

with per-phase durations drawn from the analytic timing model, operand
loads overlapped with the preceding transform (double buffering), and
the whole run executed cycle-by-cycle as a clocked component.  Tests
cross-check the controller's cycle total against
:class:`repro.hw.accelerator.MultiplyReport`, closing the loop between
the three timing views (formula, transaction ledger, clocked FSM).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.hw.timing import PAPER_TIMING, AcceleratorTiming
from repro.sim.kernel import Component
from repro.sim.trace import Timeline


@dataclass(frozen=True)
class MicroOp:
    """One controller phase: a label, a duration, and whether it can
    overlap the previous phase (double-buffered loads)."""

    label: str
    cycles: int
    overlaps_previous: bool = False


def multiply_program(
    timing: AcceleratorTiming = PAPER_TIMING,
    io_words_per_cycle: int = 8,
) -> List[MicroOp]:
    """The microcode for one full SSA multiplication.

    Operand loads stream ``n`` words at the I/O width; each is hidden
    behind the previous phase where double buffering allows.
    """
    n = timing.plan.n
    load_cycles = -(-n // io_words_per_cycle)
    fft = timing.fft_cycles()
    return [
        MicroOp("LOAD_A", load_cycles),
        MicroOp("FFT_A", fft),
        MicroOp("LOAD_B", load_cycles, overlaps_previous=True),
        MicroOp("FFT_B", fft),
        MicroOp("DOT", timing.dot_product_cycles()),
        MicroOp("IFFT", fft),
        MicroOp("CARRY", timing.carry_recovery_cycles()),
        MicroOp("STORE", load_cycles, overlaps_previous=True),
    ]


class AcceleratorController(Component):
    """Clocked FSM stepping through a microcode program."""

    def __init__(
        self,
        program: List[MicroOp],
        name: str = "controller",
        timeline: Optional[Timeline] = None,
    ):
        super().__init__(name)
        if not program:
            raise ValueError("empty microcode program")
        self.program = list(program)
        self.timeline = timeline or Timeline()
        self._index = 0
        self._remaining = self.program[0].cycles
        self._overlap_credit = 0
        self._started_at: Optional[int] = None
        self.done = False
        self.executed: List[Tuple[str, int, int]] = []

    @property
    def current_op(self) -> Optional[MicroOp]:
        if self.done:
            return None
        return self.program[self._index]

    def tick(self, cycle: int) -> None:
        if self.done:
            return
        op = self.program[self._index]
        if self._started_at is None:
            self._started_at = cycle
            self.timeline.begin(cycle, self.name, op.label)
        self._remaining -= 1
        if self._remaining > 0:
            return
        end = cycle + 1
        self.timeline.end(end, self.name, op.label)
        self.executed.append((op.label, self._started_at, end))
        self._advance(end)

    def _advance(self, now: int) -> None:
        self._index += 1
        self._started_at = None
        if self._index >= len(self.program):
            self.done = True
            return
        nxt = self.program[self._index]
        self._remaining = nxt.cycles
        if nxt.overlaps_previous:
            # A hidden phase retroactively costs nothing beyond the
            # phase it shadows: model by shrinking it to zero visible
            # cycles when it fits under the previous duration.
            prev = self.program[self._index - 1]
            hidden = min(nxt.cycles, prev.cycles)
            self._remaining = max(1, nxt.cycles - hidden)
            if nxt.cycles <= prev.cycles:
                self._remaining = 0
                self.timeline.begin(now, self.name, nxt.label)
                self.timeline.end(now, self.name, nxt.label)
                self.executed.append((nxt.label, now, now))
                self._advance(now)

    def total_cycles(self) -> int:
        """Visible (non-hidden) cycles of the whole program."""
        if not self.done:
            raise RuntimeError("program still running")
        return self.executed[-1][2] - self.executed[0][1]
