"""The complete accelerator: distributed 64K FFT and SSA multiplication.

Transaction-level model of paper Sections IV–V.  A 64K-point transform
is executed stage by stage (radix-64, radix-64, radix-16, Eq. 2) over
``P`` processing elements; sub-transforms are partitioned evenly, data
moved between owners is routed over the hypercube (e-cube, one
dimension per exchange stage) and overlapped with the next compute
stage through the PEs' double buffers.

Two fidelity levels compute identical values:

- ``fast``: per-stage vectorized math (same kernels as
  :mod:`repro.ntt.staged`) with analytic per-PE cycle ledgers;
- ``datapath``: every sub-transform runs through the shift-only
  FFT-64 unit model, every inter-stage twiddle through the DSP modular
  multiplier model, and every beat through the banked memories with
  conflict checking — the full Fig. 1 datapath, cycle-counted from
  component activity.

``multiply`` runs the whole SSA pipeline of Section V: three
transforms, the component-wise product on 32 dot-product multipliers,
and blocked carry recovery — producing both the exact product and the
phase-by-phase timing that reproduces the ≈122 µs figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.arch.spec import ArchSpec, TOPOLOGY_HYPERCUBE
from repro.field.solinas import P as FIELD_P
from repro.field.vector import vmul
from repro.hw.banked_memory import ARRAY_POINTS
from repro.hw.data_route import column_read_beats, reductor_write_beats
from repro.hw.fft64_unit import FFT64Config
from repro.hw.hypercube import HypercubeTopology
from repro.hw.modmul import ModularMultiplier
from repro.hw.pe import ProcessingElement
from repro.ntt.kernels import stage_executor
from repro.ntt.negacyclic import twist_tables
from repro.ntt.plan import (
    ORDER_DECIMATED,
    TransformPlan,
    decimated_companion,
    paper_64k_plan,
)
from repro.sim.trace import Timeline
from repro.ssa.carry import carry_recover
from repro.ssa.encode import PAPER_PARAMETERS, SSAParameters, decompose, recompose


@dataclass(frozen=True)
class StageTiming:
    """Timing of one compute stage and its trailing exchange."""

    index: int
    radix: int
    sub_transforms: int
    compute_cycles_per_pe: int
    exchange_words_per_link: int
    exchange_cycles: int
    overlapped: bool


@dataclass
class DistributedFFTReport:
    """Cycle accounting for one distributed transform."""

    pes: int
    plan_n: int
    clock_ns: float
    stages: List[StageTiming] = field(default_factory=list)
    timeline: Timeline = field(default_factory=Timeline)

    @property
    def compute_cycles(self) -> int:
        return sum(s.compute_cycles_per_pe for s in self.stages)

    @property
    def exchange_total_cycles(self) -> int:
        """Total link-busy cycles across every exchange of the row."""
        return sum(s.exchange_cycles for s in self.stages)

    @property
    def stall_cycles(self) -> int:
        """Exchange cycles not hidden behind the next compute stage."""
        stalls = 0
        for step, stage in enumerate(self.stages):
            if stage.exchange_cycles and not stage.overlapped:
                follower = (
                    self.stages[step + 1].compute_cycles_per_pe
                    if step + 1 < len(self.stages)
                    else 0
                )
                stalls += max(0, stage.exchange_cycles - follower)
        return stalls

    @property
    def total_cycles(self) -> int:
        return self.compute_cycles + self.stall_cycles

    @property
    def time_us(self) -> float:
        return self.total_cycles * self.clock_ns / 1000.0

    def render(self) -> str:
        lines = [
            f"distributed {self.plan_n}-point FFT on {self.pes} PE(s): "
            f"{self.total_cycles} cycles = {self.time_us:.2f} us"
        ]
        for s in self.stages:
            comm = (
                f"exchange {s.exchange_words_per_link} words/link "
                f"({s.exchange_cycles} cyc, "
                f"{'hidden' if s.overlapped else 'exposed'})"
                if s.exchange_cycles
                else "no exchange"
            )
            lines.append(
                f"  stage {s.index}: radix-{s.radix} x{s.sub_transforms} "
                f"-> {s.compute_cycles_per_pe} cyc/PE; {comm}"
            )
        return "\n".join(lines)


@dataclass
class DistributedFFTBatchReport:
    """Cycle accounting for a ``(batch, n)`` transform in one call.

    The accelerator has a single FFT engine, so rows stream through it
    back to back — but rows are data-independent, so an exchange stall
    one row exposes (a redistribution longer than the compute stage it
    hides behind) is filled with the *next* row's compute through the
    PEs' double buffers.  The schedule is the classic two-resource
    software pipeline: the first row pays its full serial latency, and
    every following row completes one steady-state interval later — the
    larger of the row's engine-busy time (compute bound) and its total
    link-busy time (network bound).  A single row, or a row with no
    exposed stalls (the paper design point), is bit-identical to the
    pre-overlap model.
    """

    rows: int
    #: One row's full stage report (all rows are identical).
    per_row: Optional[DistributedFFTReport]
    clock_ns: float

    @property
    def compute_cycles(self) -> int:
        if self.per_row is None:
            return 0
        return self.rows * self.per_row.compute_cycles

    @property
    def steady_interval_cycles(self) -> int:
        """Row-to-row completion interval once the pipeline is full."""
        if self.per_row is None:
            return 0
        return max(
            self.per_row.compute_cycles,
            self.per_row.exchange_total_cycles,
        )

    @property
    def serial_total_cycles(self) -> int:
        """The no-overlap schedule (every row's stalls stay exposed)."""
        if self.per_row is None:
            return 0
        return self.rows * self.per_row.total_cycles

    @property
    def hidden_stall_cycles(self) -> int:
        """Stall cycles the cross-row overlap hides versus serial."""
        return self.serial_total_cycles - self.total_cycles

    @property
    def stall_cycles(self) -> int:
        """Stall cycles still exposed in the pipelined schedule."""
        if self.per_row is None:
            return 0
        return self.total_cycles - self.compute_cycles

    @property
    def total_cycles(self) -> int:
        if self.per_row is None:
            return 0
        return (
            self.per_row.total_cycles
            + (self.rows - 1) * self.steady_interval_cycles
        )

    @property
    def time_us(self) -> float:
        return self.total_cycles * self.clock_ns / 1000.0

    def render(self) -> str:
        if self.per_row is None:
            return "batched transform: 0 rows"
        lines = [
            f"batched {self.per_row.plan_n}-point FFT x{self.rows} rows "
            f"on {self.per_row.pes} PE(s): {self.total_cycles} cycles = "
            f"{self.time_us:.2f} us "
            f"({self.per_row.total_cycles} cycles first row, "
            f"{self.steady_interval_cycles}/row steady state, "
            f"{self.hidden_stall_cycles} stall cycles hidden cross-row)"
        ]
        lines.extend(self.per_row.render().splitlines()[1:])
        return "\n".join(lines)


@dataclass(frozen=True)
class MultiplyPhase:
    """One phase of the SSA multiplication timeline."""

    name: str
    cycles: int
    time_us: float


@dataclass
class MultiplyReport:
    """Phase breakdown of one accelerated SSA multiplication."""

    clock_ns: float
    phases: List[MultiplyPhase] = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        return sum(p.cycles for p in self.phases)

    @property
    def time_us(self) -> float:
        return self.total_cycles * self.clock_ns / 1000.0

    def render(self) -> str:
        lines = [f"SSA multiplication: {self.time_us:.2f} us total"]
        for p in self.phases:
            lines.append(f"  {p.name:<18} {p.cycles:>8} cyc  {p.time_us:>8.2f} us")
        return "\n".join(lines)


def stage_ownership(
    plan: TransformPlan, index: int, pes: int
) -> np.ndarray:
    """Owning PE of every flat data position during stage ``index``."""
    length = plan.n
    for radix in plan.radices[:index]:
        length //= radix
    radix = plan.radices[index]
    tail = length // radix
    flat = np.arange(plan.n, dtype=np.int64)
    work = (flat // length) * tail + (flat % tail)
    per_pe = (plan.n // radix) // pes
    return work // per_pe


def stage_costs(
    arch: ArchSpec, plan: TransformPlan, index: int
) -> Tuple[int, int, int, int]:
    """Value-independent cycle costs of stage ``index`` under ``arch``.

    Returns ``(compute_cycles_per_pe, exchange_words_per_link,
    exchange_cycles, words_sent_per_pe)``; the exchange fields are zero
    for the last stage (no redistribution follows it).
    """
    stage = plan.stages[index]
    radix = plan.radices[index]
    compute = arch.stage_compute_cycles(stage.sub_transforms, radix)
    words = exchange_cycles = sent = 0
    if index + 1 < len(plan.stages):
        before = stage_ownership(plan, index, arch.pes)
        after = stage_ownership(plan, index + 1, arch.pes)
        moving = before != after
        words, exchange_cycles = arch.exchange.route_cycles(
            before[moving], after[moving], arch.pes
        )
        sent = int(np.count_nonzero(moving)) // arch.pes
    return compute, words, exchange_cycles, sent


def plan_schedule(arch: ArchSpec, plan: TransformPlan) -> DistributedFFTReport:
    """The stage-by-stage cycle schedule of one transform under ``arch``.

    The pure, value-free core of the cycle model: everything here is a
    function of the architecture description and the transform plan, so
    the design-space explorer prices candidates through the *same* code
    the accelerator reports with — no parallel model to drift.
    """
    report = DistributedFFTReport(
        pes=arch.pes, plan_n=plan.n, clock_ns=arch.clock_ns
    )
    stage_count = len(plan.stages)
    for index in range(stage_count):
        stage = plan.stages[index]
        compute, words, exchange_cycles, _sent = stage_costs(
            arch, plan, index
        )
        next_compute = 0
        if index + 1 < stage_count:
            next_compute = arch.stage_compute_cycles(
                plan.stages[index + 1].sub_transforms,
                plan.radices[index + 1],
            )
        report.stages.append(
            StageTiming(
                index=index,
                radix=plan.radices[index],
                sub_transforms=stage.sub_transforms,
                compute_cycles_per_pe=compute,
                exchange_words_per_link=words,
                exchange_cycles=exchange_cycles,
                overlapped=exchange_cycles <= next_compute,
            )
        )
    return report


class HEAccelerator:
    """The multi-PE accelerator (paper operating point by default).

    The configuration lives in one declarative
    :class:`~repro.arch.spec.ArchSpec`; the legacy ``pes``/``clock_ns``
    scalars remain as shorthands that build a paper-shaped spec with
    those two knobs replaced.  When ``arch`` is given it wins and the
    scalars are ignored.
    """

    def __init__(
        self,
        pes: int = 4,
        plan: Optional[TransformPlan] = None,
        params: SSAParameters = PAPER_PARAMETERS,
        clock_ns: float = 5.0,
        config: Optional[FFT64Config] = None,
        arch: Optional[ArchSpec] = None,
    ):
        if arch is None:
            arch = ArchSpec.paper_default()
            if pes != arch.pes or clock_ns != arch.clock_ns:
                arch = arch.with_overrides(
                    pes=pes, clock_ns=clock_ns, name=f"hypercube-p{pes}"
                )
        self.arch = arch
        pes = arch.pes
        self.plan = plan if plan is not None else paper_64k_plan()
        self.params = params
        if self.plan.n != params.transform_size:
            raise ValueError("plan size does not match SSA parameters")
        self.clock_ns = arch.clock_ns
        self.topology = (
            HypercubeTopology(pes)
            if arch.exchange.topology == TOPOLOGY_HYPERCUBE
            else None
        )
        partition = self.plan.n // pes
        self.pes = [
            ProcessingElement(i, partition, config) for i in range(pes)
        ]
        self.dot_product_multipliers = [
            ModularMultiplier(name=f"dotmul{i}")
            for i in range(arch.dot_product_multipliers)
        ]
        # Two ping-pong stage buffers, shared by every transform this
        # accelerator runs (the staged executor's allocation discipline):
        # each stage reads one buffer and writes the other, so a
        # transform allocates nothing per stage, and repeated transforms
        # (an engine-resident accelerator serving a workload) allocate
        # nothing at all.  Allocated lazily on the first transform.
        self._stage_buffers: Optional[Tuple[np.ndarray, np.ndarray]] = None
        # The (batch, n) counterparts, grown to the largest batch seen
        # (distributed_ntt_batch ping-pongs row-matrix views of them).
        self._batch_buffers: Optional[Tuple[np.ndarray, np.ndarray]] = None
        for radix, count in self.plan.sub_transform_counts():
            if count % pes:
                raise ValueError(
                    f"{count} radix-{radix} sub-transforms do not divide "
                    f"over {pes} PEs"
                )

    @property
    def pe_count(self) -> int:
        return len(self.pes)

    def _stage_output(self, data: np.ndarray) -> np.ndarray:
        """The reusable buffer the next stage writes (never ``data``).

        Ping-pongs between the two persistent stage buffers; the one
        currently holding the stage input (``data`` may be a reshaped
        view of it) is skipped, so kernels never read what they write.
        """
        if self._stage_buffers is None:
            self._stage_buffers = (
                np.empty(self.plan.n, dtype=np.uint64),
                np.empty(self.plan.n, dtype=np.uint64),
            )
        for buffer in self._stage_buffers:
            if not np.shares_memory(buffer, data):
                return buffer
        raise AssertionError("both stage buffers alias the stage input")

    # -- ownership / communication ---------------------------------------

    def _stage_geometry(self, plan: TransformPlan, index: int):
        """(block_length, radix, tail) of stage ``index``."""
        length = plan.n
        for radix in plan.radices[:index]:
            length //= radix
        radix = plan.radices[index]
        return length, radix, length // radix

    def _ownership(self, plan: TransformPlan, index: int) -> np.ndarray:
        """Owning PE of every flat data position during stage ``index``."""
        return stage_ownership(plan, index, self.pe_count)

    def _exchange_stats(
        self, before: np.ndarray, after: np.ndarray
    ) -> Tuple[int, int]:
        """(max words per link, cycles) for one redistribution.

        Delegates to the spec's per-topology routing model; the paper
        point is the e-cube walk (one dimension per exchange phase,
        worst link drained at eight words per cycle).
        """
        if self.pe_count == 1:
            return 0, 0
        moving = before != after
        return self.arch.exchange.route_cycles(
            before[moving], after[moving], self.pe_count
        )

    # -- distributed transform -------------------------------------------

    def _stage_costs(self, plan: TransformPlan, index: int):
        """Value-independent cycle costs of stage ``index``.

        Returns ``(compute_cycles_per_pe, exchange_words_per_link,
        exchange_cycles, words_sent_per_pe)``; the exchange fields are
        zero for the last stage (no redistribution follows it).
        """
        return stage_costs(self.arch, plan, index)

    def _timing_report(
        self, plan: TransformPlan, rows: int = 1
    ) -> DistributedFFTReport:
        """One row's stage/timeline report; PE ledgers bumped ×``rows``.

        The schedule is identical for every row of a batch, so the
        report is computed once and the per-PE activity counters are
        scaled by the row count.
        """
        report = DistributedFFTReport(
            pes=self.pe_count, plan_n=plan.n, clock_ns=self.clock_ns
        )
        cycle_cursor = 0
        stage_count = len(plan.stages)
        for index in range(stage_count):
            stage = plan.stages[index]
            compute, words, exchange_cycles, sent = self._stage_costs(
                plan, index
            )
            for pe in self.pes:
                pe.counters.fft_cycles += compute * rows
            if index + 1 < stage_count:
                for pe in self.pes:
                    pe.counters.words_sent += sent * rows
                    pe.counters.words_received += sent * rows
                    pe.swap_buffers()
            next_compute = 0
            if index + 1 < stage_count:
                next_compute = self.arch.stage_compute_cycles(
                    plan.stages[index + 1].sub_transforms,
                    plan.radices[index + 1],
                )
            overlapped = exchange_cycles <= next_compute
            report.stages.append(
                StageTiming(
                    index=index,
                    radix=plan.radices[index],
                    sub_transforms=stage.sub_transforms,
                    compute_cycles_per_pe=compute,
                    exchange_words_per_link=words,
                    exchange_cycles=exchange_cycles,
                    overlapped=overlapped,
                )
            )
            for pe_index in range(self.pe_count):
                report.timeline.begin(
                    cycle_cursor, f"pe{pe_index}", f"compute{index}"
                )
                report.timeline.end(
                    cycle_cursor + compute, f"pe{pe_index}", f"compute{index}"
                )
                if exchange_cycles:
                    report.timeline.begin(
                        cycle_cursor + compute,
                        f"pe{pe_index}",
                        f"exchange{index}",
                    )
                    report.timeline.end(
                        cycle_cursor + compute + exchange_cycles,
                        f"pe{pe_index}",
                        f"exchange{index}",
                    )
            cycle_cursor += compute
        return report

    def batch_schedule(
        self, rows: int, inverse: bool = False
    ) -> DistributedFFTBatchReport:
        """Cycle schedule of ``rows`` transforms without moving data.

        The pure pricing entry the design-space explorer uses: the same
        pipelined cross-row schedule :meth:`distributed_ntt_batch`
        reports, minus the value computation and PE ledger updates.
        """
        pair = self.plan.inverse_plan if inverse else self.plan
        if pair is None:
            raise ValueError("plan has no inverse companion")
        if rows == 0:
            return DistributedFFTBatchReport(
                rows=0, per_row=None, clock_ns=self.clock_ns
            )
        per_row = plan_schedule(self.arch, self._timing_plan(pair))
        return DistributedFFTBatchReport(
            rows=rows, per_row=per_row, clock_ns=self.clock_ns
        )

    def _timing_plan(self, pair: TransformPlan) -> TransformPlan:
        """The plan whose stage schedule prices ``pair``'s execution.

        A decimated pair executes the *same* stage schedule as its
        natural companion — the DIF forward shares the companion's
        stage tuple outright and the DIT inverse runs the transposed
        network (identical radix/sub-transform multiset, identical
        per-stage FFT-unit occupancy); only the skipped output gather
        differs, and the gather was never part of the cycle ledger.
        Pricing from the natural companion keeps the Section V numbers
        byte-identical to the permuted oracle.
        """
        if pair.ordering == ORDER_DECIMATED and pair.base_plan is not None:
            return pair.base_plan
        return pair

    def distributed_ntt(
        self,
        values: np.ndarray,
        inverse: bool = False,
        fidelity: str = "fast",
    ) -> Tuple[np.ndarray, DistributedFFTReport]:
        """Run one transform across the PEs.

        Returns the transformed vector (natural order — or decimated
        order for a decimated plan's forward — scaled by ``n^{-1}``
        when ``inverse``; the scale is already folded into the stages
        for fused negacyclic and decimated plans) and the cycle report.

        A fused negacyclic plan runs on ``fast`` fidelity exactly like
        a cyclic one (the stage kernels are constant-agnostic, so the
        twist rides in the stage tables at zero extra passes and an
        unchanged cycle schedule); ``datapath`` fidelity instead walks
        the plan's cyclic base with the explicit ψ-twist, because the
        shift-only FFT-64 unit evaluates plain DFT webs only — the
        cycle report stays the honest beat-exact schedule, and the
        values stay bit-identical to the fused fast path.  Decimated
        plans follow the same pattern: ``fast`` fidelity runs the
        permutation-free DIF/DIT walks directly, ``datapath`` walks the
        natural companion with explicit gathers/scatters at the
        boundary — bit-identical, since reordering exact residues
        commutes with everything.
        """
        return self._ntt_flat(self.plan, values, inverse, fidelity)

    def _ntt_flat(
        self,
        plan: TransformPlan,
        values: np.ndarray,
        inverse: bool,
        fidelity: str,
    ) -> Tuple[np.ndarray, DistributedFFTReport]:
        """One flat transform under an explicit (forward) plan pair."""
        pair = plan.inverse_plan if inverse else plan
        if pair is None:
            raise ValueError("plan has no inverse companion")
        if values.shape != (pair.n,):
            raise ValueError(f"expected a flat array of length {pair.n}")
        if fidelity not in ("fast", "datapath"):
            raise ValueError(f"unknown fidelity {fidelity!r}")

        data = np.ascontiguousarray(values, dtype=np.uint64)
        if fidelity == "datapath":
            out = self._ntt_row_datapath(pair, data, inverse)
            return out, self._timing_report(self._timing_plan(pair))
        rows = self._ntt_fast_rows(pair, data.reshape(1, pair.n), inverse)
        return rows[0], self._timing_report(self._timing_plan(pair))

    def _ntt_fast_rows(
        self, pair: TransformPlan, values: np.ndarray, inverse: bool
    ) -> np.ndarray:
        """Vectorized stage walk of ``(rows, n)`` data; owned output.

        ``pair`` is the already direction-resolved plan to execute (the
        inverse companion for inverse transforms).  Dispatches the DIT
        walk for decimated inverse plans; natural plans end with the
        digit-reversal gather, decimated ones with a plain contiguous
        copy off the persistent stage buffers.
        """
        data = values.copy()  # never mutate the caller's matrix
        if pair.dit:
            tail = 1
            for index in range(len(pair.stages)):
                data = self._run_stage_fast_batch_dit(
                    data, pair, index, tail
                )
                tail *= pair.stages[index].radix
        else:
            for index in range(len(pair.stages)):
                data = self._run_stage_fast_batch(data, pair, index)
        if pair.ordering == ORDER_DECIMATED:
            # No gather — the copy just moves the result off the
            # reusable ping-pong buffers (fancy indexing would copy
            # anyway on the natural route).
            out = data.copy()
        else:
            out = data[:, pair.output_permutation]
        if inverse and not pair.twist and pair.ordering != ORDER_DECIMATED:
            vmul(out, np.broadcast_to(pair.n_inv, out.shape), out=out)
        return out

    def _ntt_row_datapath(
        self, pair: TransformPlan, data: np.ndarray, inverse: bool
    ) -> np.ndarray:
        """Beat-exact value computation of one flat row (no report).

        ``pair`` is the direction-resolved plan.  Decimated pairs
        convert at the boundary and walk their *natural* companion —
        the shift-only FFT-64 unit model executes the one canonical
        stage schedule, exactly as the fused route below walks the
        cyclic base with an explicit twist; gathers of exact residues
        are bit-transparent.  Fused pairs apply the explicit ψ-twist /
        ψ⁻¹-untwist around the cyclic base walk.
        """
        if pair.ordering == ORDER_DECIMATED:
            natural = pair.base_plan
            if natural is None:  # pragma: no cover - always derived
                raise ValueError("decimated plan carries no natural base")
            if inverse:
                # Gather the decimated spectrum to natural order, then
                # run the natural inverse.
                return self._ntt_row_datapath(
                    natural, data[pair.output_permutation], True
                )
            out = self._ntt_row_datapath(natural, data, False)
            decimated = np.empty_like(out)
            decimated[pair.output_permutation] = out
            return decimated
        if pair.twist:
            return self._datapath_negacyclic_row(pair, data, inverse)
        for index in range(len(pair.stages)):
            data = self._run_stage_datapath(data, pair, index, inverse)
        out = data[pair.output_permutation]
        if inverse:
            vmul(out, np.broadcast_to(pair.n_inv, out.shape), out=out)
        return out

    def _datapath_negacyclic_row(
        self, pair: TransformPlan, data: np.ndarray, inverse: bool
    ) -> np.ndarray:
        """Beat-exact route of a fused plan: explicit twist + base walk.

        The fused stage constants cannot run through the shift-only
        FFT-64 unit model, so datapath fidelity applies the ψ-twist /
        ψ⁻¹-untwist explicitly around the cyclic ``base_plan``'s
        per-beat stage walk.  Output bits match the fused fast path.
        """
        base = pair.base_plan
        if base is None:  # pragma: no cover - fused plans always carry it
            raise ValueError("fused plan carries no cyclic base plan")
        forward_tab, backward_tab = twist_tables(base.n)
        if not inverse:
            data = vmul(data, forward_tab)
        for index in range(len(base.stages)):
            data = self._run_stage_datapath(data, base, index, inverse)
        out = data[base.output_permutation]
        if inverse:
            vmul(out, np.broadcast_to(base.n_inv, out.shape), out=out)
            vmul(out, backward_tab, out=out)
        return out

    def distributed_ntt_batch(
        self,
        values: np.ndarray,
        inverse: bool = False,
        fidelity: str = "fast",
    ) -> Tuple[np.ndarray, DistributedFFTBatchReport]:
        """Run a ``(batch, n)`` matrix of transforms in one call.

        The batch macro-pipeline counterpart of :meth:`distributed_ntt`
        — on ``fast`` fidelity the whole row batch moves through each
        stage as one vectorized kernel dispatch (no per-row Python
        loop), while the cycle model streams the rows through the
        single FFT engine back to back
        (:class:`DistributedFFTBatchReport`).  ``datapath`` fidelity
        keeps the beat-exact per-row walk.  Values are bit-identical to
        looping :meth:`distributed_ntt` in both fidelities.

        Fused negacyclic plans drop the two modeled full-vector twist
        passes entirely: the twist constants ride inside the stage
        tables, so the batch streams through the identical per-row
        stage schedule a cyclic transform pays — ring products cost
        exactly one forward + one inverse pass each way.  Decimated
        plans additionally drop the per-batch digit-reversal gathers on
        ``fast`` fidelity (the decimated block order *is* the output);
        ``datapath`` walks the natural companion with explicit boundary
        reorders, keeping the beat-exact oracle bit-identical.
        """
        pair = self.plan.inverse_plan if inverse else self.plan
        if pair is None:
            raise ValueError("plan has no inverse companion")
        values = np.ascontiguousarray(values, dtype=np.uint64)
        if values.ndim != 2 or values.shape[1] != pair.n:
            raise ValueError(f"expected a (batch, {pair.n}) matrix")
        if fidelity not in ("fast", "datapath"):
            raise ValueError(f"unknown fidelity {fidelity!r}")
        rows = values.shape[0]
        if rows == 0:
            return values.copy(), DistributedFFTBatchReport(
                rows=0, per_row=None, clock_ns=self.clock_ns
            )

        if fidelity == "datapath":
            out = np.empty_like(values)
            for row in range(rows):
                out[row] = self._ntt_row_datapath(
                    pair, np.ascontiguousarray(values[row]), inverse
                )
            per_row = self._timing_report(
                self._timing_plan(pair), rows=rows
            )
            return out, DistributedFFTBatchReport(
                rows=rows, per_row=per_row, clock_ns=self.clock_ns
            )

        out = self._ntt_fast_rows(pair, values, inverse)
        per_row = self._timing_report(self._timing_plan(pair), rows=rows)
        return out, DistributedFFTBatchReport(
            rows=rows, per_row=per_row, clock_ns=self.clock_ns
        )

    def _batch_stage_output(self, data: np.ndarray) -> np.ndarray:
        """The ``(rows, n)`` ping-pong buffer the next stage writes.

        Mirrors :meth:`_stage_output` for batched transforms: two
        persistent matrices grown to the largest batch seen; the one
        holding the stage input is skipped.
        """
        rows, n = data.shape
        if (
            self._batch_buffers is None
            or self._batch_buffers[0].shape[0] < rows
        ):
            self._batch_buffers = (
                np.empty((rows, n), dtype=np.uint64),
                np.empty((rows, n), dtype=np.uint64),
            )
        for buffer in self._batch_buffers:
            view = buffer[:rows]
            if not np.shares_memory(view, data):
                return view
        raise AssertionError("both batch buffers alias the stage input")

    def _run_stage_fast_batch(
        self, data: np.ndarray, plan: TransformPlan, index: int
    ) -> np.ndarray:
        """One stage over every row of a ``(rows, n)`` matrix at once.

        The stage kernels are block-axis agnostic, so the row batch
        simply multiplies the block count: ``rows × blocks`` sub-DFTs
        go through one kernel dispatch, with the twiddle table
        broadcast across all of them.
        """
        length, radix, tail = self._stage_geometry(plan, index)
        stage = plan.stages[index]
        blocks = plan.n // length
        rows = data.shape[0]
        view = data.reshape(rows * blocks, radix, tail)
        out_rows = self._batch_stage_output(data)
        out = out_rows.reshape(rows * blocks, radix, tail)
        stage_executor(plan.kernel or None)(view, stage, out)
        if stage.twiddles is not None:
            vmul(out, stage.twiddles[np.newaxis, :, :], out=out)
        return out_rows

    def _run_stage_fast_batch_dit(
        self, data: np.ndarray, plan: TransformPlan, index: int, tail: int
    ) -> np.ndarray:
        """One decimation-in-time stage over a ``(rows, n)`` matrix.

        The DIT walk's tail axis *grows* with the executed-radix
        product (``tail`` argument) instead of shrinking, and the stage
        twiddle diagonal applies to the *input* view before the DFT —
        the transpose of :meth:`_run_stage_fast_batch`'s schedule.
        ``data`` is always an accelerator-owned buffer (the batch entry
        copies the caller's matrix), so the pre-twiddle may run in
        place.
        """
        stage = plan.stages[index]
        radix = stage.radix
        rows = data.shape[0]
        groups = (rows * plan.n) // (radix * tail)
        view = data.reshape(groups, radix, tail)
        if stage.twiddles is not None:
            vmul(view, stage.twiddles[np.newaxis, :, :], out=view)
        out_rows = self._batch_stage_output(data)
        out = out_rows.reshape(groups, radix, tail)
        stage_executor(plan.kernel or None)(view, stage, out)
        return out_rows

    def _run_stage_datapath(
        self,
        data: np.ndarray,
        plan: TransformPlan,
        index: int,
        inverse: bool = False,
    ) -> np.ndarray:
        """Per-block execution through the PE datapaths.

        Every sub-transform is gathered from the owner PE's banked
        buffer (column beats), run through its FFT-64 unit, twiddled on
        its modular multipliers, and scattered back through write
        beats — with bank-conflict checking live.

        The shift-only unit always evaluates the *forward* sub-DFT
        (root 8); inverse stages are realized by reversing the output
        component order — ``Σ a_i·ω^{-ik} = F[(R−k) mod R]`` — which in
        hardware is just a different address sequence in the data
        route.
        """
        length, radix, tail = self._stage_geometry(plan, index)
        stage = plan.stages[index]
        blocks = plan.n // length
        # Every work item writes its own ``radix`` positions and the
        # items tile all of [0, n), so the reused buffer needs no
        # zero-fill.
        out = self._stage_output(data)
        work_total = blocks * tail
        per_pe = work_total // self.pe_count
        for work in range(work_total):
            pe = self.pes[work // per_pe]
            local_work = work % per_pe
            block, t = divmod(work, tail)
            flat = block * length + np.arange(radix) * tail + t
            samples = [int(data[i]) for i in flat]
            self._buffer_roundtrip(pe, local_work, samples, radix)
            transformed = pe.run_sub_transform(samples, radix)
            if inverse:
                transformed = [
                    transformed[(radix - k) % radix] for k in range(radix)
                ]
            if stage.twiddles is not None:
                twiddled: List[int] = []
                for base in range(0, radix, 8):
                    lane_values = transformed[base : base + 8]
                    lane_twiddles = [
                        int(stage.twiddles[base + k, t]) for k in range(8)
                    ]
                    twiddled.extend(pe.apply_twiddles(lane_values, lane_twiddles))
                transformed = twiddled
            out[flat] = np.array(transformed, dtype=np.uint64)
        return out

    def _buffer_roundtrip(
        self,
        pe: ProcessingElement,
        local_work: int,
        samples: Sequence[int],
        radix: int,
    ) -> None:
        """Exercise the banked buffers with the real beat patterns.

        The local layout stores one sub-transform block contiguously;
        the block is written with the 8-spaced reductor pattern (as the
        previous stage would have) and read back with column beats.
        """
        base = (local_work * radix) % ARRAY_POINTS
        if base + radix > ARRAY_POINTS:
            base = 0
        array = pe.buffers[pe.active_buffer][0]
        stride = max(1, radix // 8)
        for beat in reductor_write_beats(base, radix):
            values = [
                samples[i - base]
                for i in beat.indices
            ]
            array.write_beat(beat.indices, values)
        collected: Dict[int, int] = {}
        for beat in column_read_beats(base, radix):
            for i, value in zip(beat.indices, array.read_beat(beat.indices)):
                collected[i - base] = value
        restored = [collected[i] for i in range(radix)]
        if restored != [int(s) for s in samples]:
            raise AssertionError("banked buffer round-trip corrupted data")

    # -- full SSA multiplication ------------------------------------------

    def multiply(
        self, a: int, b: int, fidelity: str = "fast"
    ) -> Tuple[int, MultiplyReport]:
        """Exact product plus the Section V phase timing."""
        if self.plan.twist:
            raise ValueError(
                "SSA multiplication needs a cyclic plan; this "
                f"accelerator holds a {self.plan.twist!r}-fused one"
            )
        report = MultiplyReport(clock_ns=self.clock_ns)

        vec_a = decompose(a, self.params)
        vec_b = decompose(b, self.params)

        # The hardware keeps the decimated order between the forward
        # passes and the inverse (the dot-product bank is
        # order-agnostic), so the fast functional path runs the
        # permutation-free pair — zero digit-reversal gathers per
        # product.  The beat-exact datapath keeps the natural-order
        # walk as the oracle; the cycle schedule is identical either
        # way (gathers were never in the ledger).
        conv_plan = (
            decimated_companion(self.plan)
            if fidelity == "fast"
            else self.plan
        )
        spec_a, fft_a = self._ntt_flat(conv_plan, vec_a, False, fidelity)
        spec_b, fft_b = self._ntt_flat(conv_plan, vec_b, False, fidelity)

        # Component-wise product on the dot-product multiplier bank.
        spectrum = vmul(spec_a, spec_b)
        products_per_mul = self.plan.n // len(self.dot_product_multipliers)
        dot_cycles = self.dot_product_multipliers[0].busy_cycles(
            products_per_mul
        )
        for multiplier in self.dot_product_multipliers:
            multiplier.operations += products_per_mul

        conv, fft_c = self._ntt_flat(conv_plan, spectrum, True, fidelity)

        digits = carry_recover(
            [int(x) for x in conv], self.params.coefficient_bits
        )
        carry_cycles = self.arch.carry_recovery_cycles(self.plan.n)
        product = recompose(digits, self.params.coefficient_bits)

        report.phases.append(
            MultiplyPhase("fft_a", fft_a.total_cycles, fft_a.time_us)
        )
        report.phases.append(
            MultiplyPhase("fft_b", fft_b.total_cycles, fft_b.time_us)
        )
        report.phases.append(
            MultiplyPhase(
                "dot_product", dot_cycles, dot_cycles * self.clock_ns / 1000.0
            )
        )
        report.phases.append(
            MultiplyPhase("inverse_fft", fft_c.total_cycles, fft_c.time_us)
        )
        report.phases.append(
            MultiplyPhase(
                "carry_recovery",
                carry_cycles,
                carry_cycles * self.clock_ns / 1000.0,
            )
        )
        return product, report
