"""Synchronous simulation kernel: components, FIFOs, and the scheduler.

Execution model
---------------
Every :class:`Component` implements ``tick()``; the :class:`Simulator`
calls each component's ``tick`` once per cycle in registration order,
then commits all FIFO pushes performed during the cycle.  This is the
classic two-phase (compute/commit) discipline, so a value pushed in
cycle ``t`` becomes visible to consumers in cycle ``t + 1`` — matching
registered (clocked) hardware communication.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Iterable, List, Optional, Tuple


class Fifo:
    """A registered FIFO channel between two components.

    Pushes are staged and only become pop-visible after the simulator
    commits the cycle, emulating a register boundary.  ``capacity``
    bounds occupancy (staged + visible); a push into a full FIFO raises,
    which in these models indicates a flow-control bug.
    """

    def __init__(self, name: str, capacity: int = 1 << 30):
        self.name = name
        self.capacity = capacity
        self._visible: Deque = deque()
        self._staged: List = []

    def push(self, item) -> None:
        if len(self._visible) + len(self._staged) >= self.capacity:
            raise OverflowError(f"FIFO {self.name} overflow")
        self._staged.append(item)

    def can_pop(self) -> bool:
        return bool(self._visible)

    def pop(self):
        if not self._visible:
            raise IndexError(f"FIFO {self.name} underflow")
        return self._visible.popleft()

    def peek(self):
        if not self._visible:
            raise IndexError(f"FIFO {self.name} empty")
        return self._visible[0]

    def __len__(self) -> int:
        return len(self._visible)

    def commit(self) -> None:
        """Make this cycle's pushes visible (called by the simulator)."""
        self._visible.extend(self._staged)
        self._staged.clear()


class Component:
    """Base class for clocked components.

    Subclasses override :meth:`tick`; they may also expose a
    ``resources()`` method returning a
    :class:`repro.hw.resources.ResourceEstimate` for the census.
    Components form a naming hierarchy through ``parent`` so traces and
    resource reports can be grouped.
    """

    def __init__(self, name: str, parent: Optional["Component"] = None):
        self.name = name
        self.parent = parent
        self.children: List[Component] = []
        if parent is not None:
            parent.children.append(self)

    @property
    def path(self) -> str:
        """Hierarchical name, e.g. ``accelerator.pe0.fft64``."""
        if self.parent is None:
            return self.name
        return f"{self.parent.path}.{self.name}"

    def tick(self, cycle: int) -> None:
        """Advance one clock cycle (default: do nothing)."""

    def iter_tree(self) -> Iterable["Component"]:
        """Yield this component and all descendants, depth-first."""
        yield self
        for child in self.children:
            yield from child.iter_tree()


class Simulator:
    """Drives a set of components and FIFOs through clock cycles."""

    def __init__(self):
        self.cycle = 0
        self._components: List[Component] = []
        self._fifos: List[Fifo] = []

    def add(self, component: Component) -> Component:
        self._components.append(component)
        return component

    def add_fifo(self, fifo: Fifo) -> Fifo:
        self._fifos.append(fifo)
        return fifo

    def step(self, cycles: int = 1) -> None:
        """Advance the clock by ``cycles`` cycles."""
        for _ in range(cycles):
            for component in self._components:
                component.tick(self.cycle)
            for fifo in self._fifos:
                fifo.commit()
            self.cycle += 1

    def run_until(
        self, condition: Callable[[], bool], max_cycles: int = 1_000_000
    ) -> int:
        """Step until ``condition()`` is true; returns the cycle count.

        Raises
        ------
        TimeoutError
            If the condition does not hold within ``max_cycles``.
        """
        start = self.cycle
        while not condition():
            if self.cycle - start >= max_cycles:
                raise TimeoutError(
                    f"condition not met within {max_cycles} cycles"
                )
            self.step()
        return self.cycle - start
