"""Trace recording: cycle-stamped events and stage timelines.

Used by the accelerator models to reconstruct the compute/communicate
interleaving of paper Fig. 2 and to report per-stage cycle budgets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class TraceEvent:
    """One cycle-stamped event emitted by a model."""

    cycle: int
    source: str
    kind: str
    payload: str = ""


@dataclass
class Interval:
    """A named half-open cycle interval ``[start, end)``."""

    label: str
    source: str
    start: int
    end: Optional[int] = None

    @property
    def duration(self) -> int:
        if self.end is None:
            raise ValueError(f"interval {self.label} still open")
        return self.end - self.start


class Timeline:
    """Collects events and intervals; renders a textual schedule.

    The rendering is what :mod:`benchmarks.bench_fig2_schedule` prints
    to reproduce the structure of paper Fig. 2.
    """

    def __init__(self):
        self.events: List[TraceEvent] = []
        self._open: Dict[Tuple[str, str], Interval] = {}
        self.intervals: List[Interval] = []

    def emit(self, cycle: int, source: str, kind: str, payload: str = "") -> None:
        self.events.append(TraceEvent(cycle, source, kind, payload))

    def begin(self, cycle: int, source: str, label: str) -> None:
        key = (source, label)
        if key in self._open:
            raise ValueError(f"interval {key} already open")
        self._open[key] = Interval(label=label, source=source, start=cycle)

    def end(self, cycle: int, source: str, label: str) -> Interval:
        key = (source, label)
        interval = self._open.pop(key)
        interval.end = cycle
        self.intervals.append(interval)
        return interval

    def intervals_for(self, source: str) -> List[Interval]:
        return [i for i in self.intervals if i.source == source]

    def total_span(self) -> int:
        """Cycles from the earliest start to the latest end."""
        if not self.intervals:
            return 0
        return max(i.end for i in self.intervals) - min(
            i.start for i in self.intervals
        )

    def render(self, sources: Optional[List[str]] = None) -> str:
        """ASCII schedule: one line per source, one column per interval."""
        if sources is None:
            sources = sorted({i.source for i in self.intervals})
        lines = []
        for source in sources:
            spans = sorted(self.intervals_for(source), key=lambda i: i.start)
            cells = [
                f"[{i.start:>6}..{i.end:<6} {i.label}]" for i in spans
            ]
            lines.append(f"{source:<10} " + " ".join(cells))
        return "\n".join(lines)
