"""Minimal cycle-based simulation kernel used by the hardware models.

Deliberately small: synchronous components advanced by a single clock,
FIFO channels between them, and a trace recorder for timelines.  The
accelerator models in :mod:`repro.hw` are built on these primitives so
their cycle counts come from an actual clocked execution rather than
hand-written formulas (the analytic formulas of paper Section V live
separately in :mod:`repro.hw.timing` and are cross-checked against the
simulation).
"""

from repro.sim.kernel import Component, Simulator, Fifo
from repro.sim.trace import TraceEvent, Timeline

__all__ = ["Component", "Simulator", "Fifo", "TraceEvent", "Timeline"]
