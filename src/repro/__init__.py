"""repro — reproduction of the DATE 2016 FPGA accelerator for
homomorphic encryption (Cilardo & Argenziano).

The library implements, in Python, every system the paper describes:

- :mod:`repro.field` — arithmetic in GF(p), p = 2**64 − 2**32 + 1;
- :mod:`repro.ntt` — number-theoretic transforms, from the O(n²)
  oracle to the paper's three-stage radix-64/64/16 64K-point plan;
- :mod:`repro.ssa` — Schönhage–Strassen multiplication of 786,432-bit
  operands (plus classical baselines);
- :mod:`repro.sim` — a small cycle-based simulation kernel;
- :mod:`repro.hw` — functional, cycle and resource models of the
  accelerator (FFT-64 unit, banked memories, modular multipliers,
  processing elements, hypercube, Tables I–II generators);
- :mod:`repro.fhe` — the DGHV and RLWE homomorphic workloads;
- :mod:`repro.analysis` — sweeps and shape checks for the evaluation;
- :mod:`repro.engine` — **the front door**: one configurable
  :class:`~repro.engine.Engine` over the whole stack.

Quickstart::

    from repro import Engine, ExecutionConfig

    eng = Engine()                         # software backend
    product = eng.multiply(a, b)           # bit-exact SSA
    ring = eng.ring(4096)                  # (n,) or (batch, n) alike
    spectrum = ring.forward(rows)
    scheme = eng.fhe()                     # DGHV on the engine's SSA

    hw = Engine(backend="hw-model")        # same values + cycle model
    product, report = hw.multiply_with_report(a, b)
    print(report.render())                 # ≈122 us

The historical top-level helpers (``ssa_multiply``, ``plan_for_size``,
``paper_64k_plan``) still work but are deprecation shims over a
process-default engine; classes (:class:`SSAMultiplier`,
:class:`HEAccelerator`, :class:`DGHV`, ...) remain directly importable.
"""

import warnings as _warnings

from repro.engine import Engine, ExecutionConfig, default_engine
from repro.field.solinas import P
from repro.ssa import SSAMultiplier, PAPER_PARAMETERS
from repro.hw import (
    HEAccelerator,
    AcceleratorTiming,
    PAPER_TIMING,
    table1_report,
    table2_report,
)
from repro.fhe import DGHV, SMALL_DGHV, TOY

__version__ = "1.0.0"


def _warn_legacy(old: str, new: str) -> None:
    _warnings.warn(
        f"repro.{old} is deprecated; use {new} instead "
        "(see the README migration table)",
        DeprecationWarning,
        stacklevel=3,
    )


def ssa_multiply(a, b, params=None):
    """Deprecated shim: one-shot SSA product via the default engine.

    Prefer ``Engine().multiply(a, b)`` (or
    ``default_engine().multiply`` for the shared-cache behaviour this
    shim delegates to).  Bit-identical to the historical
    :func:`repro.ssa.ssa_multiply`.
    """
    _warn_legacy("ssa_multiply", "Engine().multiply(a, b)")
    engine = default_engine()
    if params is None:
        return engine.multiply(a, b)
    return engine.multiplier(params=params).multiply(a, b)


def plan_for_size(n, radices=None, omega=None, kernel=None):
    """Deprecated shim: build a plan in the default engine's cache.

    Prefer ``Engine().plan(n)`` / ``engine.ring(n)``.  The default
    engine shares the process-wide plan cache, so the returned plans
    are the same objects :func:`repro.ntt.plan.plan_for_size` yields.
    """
    _warn_legacy("plan_for_size", "Engine().plan(n, ...)")
    return default_engine().plan(n, radices, omega, kernel=kernel)


def paper_64k_plan():
    """Deprecated shim: the paper's 64K plan via the default engine.

    Prefer ``Engine().plan(65536, (64, 64, 16))`` or
    :func:`repro.ntt.paper_64k_plan`.
    """
    _warn_legacy("paper_64k_plan", "Engine().plan(65536, (64, 64, 16))")
    return default_engine().plan(65536, (64, 64, 16))


__all__ = [
    "P",
    "Engine",
    "ExecutionConfig",
    "default_engine",
    "SSAMultiplier",
    "ssa_multiply",
    "PAPER_PARAMETERS",
    "paper_64k_plan",
    "plan_for_size",
    "HEAccelerator",
    "AcceleratorTiming",
    "PAPER_TIMING",
    "table1_report",
    "table2_report",
    "DGHV",
    "SMALL_DGHV",
    "TOY",
    "__version__",
]
