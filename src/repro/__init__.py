"""repro — reproduction of the DATE 2016 FPGA accelerator for
homomorphic encryption (Cilardo & Argenziano).

The library implements, in Python, every system the paper describes:

- :mod:`repro.field` — arithmetic in GF(p), p = 2**64 − 2**32 + 1;
- :mod:`repro.ntt` — number-theoretic transforms, from the O(n²)
  oracle to the paper's three-stage radix-64/64/16 64K-point plan;
- :mod:`repro.ssa` — Schönhage–Strassen multiplication of 786,432-bit
  operands (plus classical baselines);
- :mod:`repro.sim` — a small cycle-based simulation kernel;
- :mod:`repro.hw` — functional, cycle and resource models of the
  accelerator (FFT-64 unit, banked memories, modular multipliers,
  processing elements, hypercube, Tables I–II generators);
- :mod:`repro.fhe` — the DGHV homomorphic-encryption workload;
- :mod:`repro.analysis` — sweeps and shape checks for the evaluation.

Quickstart::

    from repro import SSAMultiplier, HEAccelerator

    product = SSAMultiplier().multiply(a, b)          # bit-exact SSA
    product, report = HEAccelerator().multiply(a, b)  # + cycle timing
    print(report.render())                            # ≈122 us
"""

from repro.field.solinas import P
from repro.ssa import SSAMultiplier, ssa_multiply, PAPER_PARAMETERS
from repro.ntt import paper_64k_plan, plan_for_size
from repro.hw import (
    HEAccelerator,
    AcceleratorTiming,
    PAPER_TIMING,
    table1_report,
    table2_report,
)
from repro.fhe import DGHV, SMALL_DGHV, TOY

__version__ = "1.0.0"

__all__ = [
    "P",
    "SSAMultiplier",
    "ssa_multiply",
    "PAPER_PARAMETERS",
    "paper_64k_plan",
    "plan_for_size",
    "HEAccelerator",
    "AcceleratorTiming",
    "PAPER_TIMING",
    "table1_report",
    "table2_report",
    "DGHV",
    "SMALL_DGHV",
    "TOY",
    "__version__",
]
