"""Legacy setup shim for editable installs on older setuptools."""

from setuptools import setup

setup()
